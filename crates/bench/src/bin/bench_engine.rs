//! Scenario-engine benchmark: grid throughput and peak records-in-memory
//! for the streaming results pipeline, plus a resumable-sweep demo.
//!
//! Default mode runs the same protocol × K × seed grid three ways and
//! writes `BENCH_engine.json`:
//!
//! * `collect` — the legacy materialize-everything path (the "before":
//!   every [`more_scenario::RunRecord`] lives in memory until the end,
//!   so the high-water mark is the whole grid);
//! * `aggregate` — bounded-memory per-cell summaries (the "after": the
//!   high-water mark is just the executor's reorder buffer, O(workers));
//! * `jsonl` — incremental file streaming.
//!
//! ```sh
//! cargo run --release -p more-bench --bin bench_engine -- --runs 64
//! ```
//!
//! `--scaling` additionally sweeps a city-mesh scaling curve
//! (`--sizes 100,1000,5000,10000`, Srcr under Poisson arrivals capped at
//! `--flows 500` concurrent) and appends runtime + peak-RSS points to
//! the same JSON — the sparse-topology acceptance benchmark.
//!
//! `--resume-demo DIR` instead runs a checkpointed JSONL/CSV sweep under
//! `DIR` — kill it mid-run (`SIGTERM`) and re-invoke with the same
//! arguments and it resumes from the manifest, finishing byte-identical
//! to an uninterrupted run (CI exercises exactly that round-trip).

use more_bench::common::{banner, threads, Args};
use more_scenario::sink::{Aggregate, Collect, CsvAppend, JsonLines, Tee};
use more_scenario::{
    QueueSpec, RunSummary, Scenario, ScenarioBuilder, Sweep, TopologySpec, TrafficModelSpec,
    TrafficSpec,
};
use std::time::Instant;

/// The benchmark grid: 2 protocols × 2 batch sizes × `seeds` seeds over
/// a 3-hop line (fast enough to sweep, slow enough to parallelize).
fn grid(seeds: u64) -> ScenarioBuilder {
    Scenario::named("bench_engine")
        .topology(TopologySpec::Line {
            hops: 3,
            p_adj: 0.85,
            skip_decay: 0.2,
            spacing: 25.0,
        })
        .traffic(TrafficSpec::SinglePair {
            src: mesh_topology::NodeId(0),
            dst: mesh_topology::NodeId(3),
        })
        .protocols(["MORE", "Srcr"])
        .sweep(Sweep::K(vec![8, 16]))
        .seeds(1..=seeds)
        .packets(32)
        .deadline(120)
        .threads(threads())
}

struct Measured {
    label: &'static str,
    secs: f64,
    runs: usize,
    high_water: usize,
}

fn measure(
    label: &'static str,
    seeds: u64,
    run: impl FnOnce(ScenarioBuilder) -> RunSummary,
) -> Measured {
    let t0 = Instant::now();
    let summary = run(grid(seeds));
    let secs = t0.elapsed().as_secs_f64();
    println!(
        "  {label:>9}: {} runs in {secs:.2} s ({:.1} runs/s), peak records in memory {}",
        summary.records,
        summary.records as f64 / secs,
        summary.records_high_water,
    );
    Measured {
        label,
        secs,
        runs: summary.records,
        high_water: summary.records_high_water,
    }
}

/// Peak resident set (`VmHWM`) in MiB from `/proc/self/status`. A
/// process-wide high-water mark — monotone across points, so the curve
/// reports the running maximum. 0.0 where procfs is unavailable.
fn peak_rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

struct ScalePoint {
    nodes: usize,
    flows: usize,
    secs: f64,
    records: usize,
    peak_rss_mib: f64,
}

/// The city-mesh scaling curve: one Srcr + Poisson cell per node count,
/// sized so the largest point carries `flows_cap` concurrent flows.
/// Exercises the whole sparse stack — CellGrid placement, CSR adjacency,
/// sparse medium relations, lazy pair pools, path-sparse Srcr state.
fn scaling_curve(
    sizes: &[usize],
    flows_cap: usize,
    packets: usize,
    deadline: u64,
) -> Vec<ScalePoint> {
    let hold_s = 10.0;
    let mut points = Vec::new();
    for &n in sizes {
        // Small meshes can't host the full cap; keep ≤ n/2 concurrent.
        let max_active = flows_cap.min((n / 2).max(1));
        // Offered load ≈ 1.5× the cap per lifetime, so the cap binds
        // within the first few held lifetimes.
        let rate_per_s = 1.5 * max_active as f64 / hold_s;
        let t0 = Instant::now();
        let mut sink = Aggregate::new();
        let summary = Scenario::named("scaling")
            .topology(TopologySpec::City { n, seed: 1 })
            .traffic_model(TrafficModelSpec::Poisson {
                rate_per_s,
                mean_hold_s: hold_s,
                max_active,
            })
            .protocol("Srcr")
            .packets(packets)
            .deadline(deadline)
            .seeds(1..=1)
            .threads(1)
            .run_with_sink(&mut sink);
        let secs = t0.elapsed().as_secs_f64();
        let rss = peak_rss_mib();
        println!(
            "  {n:>6} nodes, {max_active:>4} concurrent flows: {secs:.2} s, \
             {} records, peak RSS {rss:.0} MiB",
            summary.records,
        );
        points.push(ScalePoint {
            nodes: n,
            flows: max_active,
            secs,
            records: summary.records,
            peak_rss_mib: rss,
        });
    }
    points
}

fn bench(args: &Args) {
    banner("BENCH engine", "grid throughput and streaming-sink memory");
    let runs: u64 = args.get("runs", 64);
    let seeds = (runs / 4).max(1); // 2 protocols × 2 K points per seed
    let out: String = args.get("out", "BENCH_engine.json".to_string());

    let results = [
        measure("collect", seeds, |b| {
            let mut sink = Collect::new();
            b.run_with_sink(&mut sink)
        }),
        measure("aggregate", seeds, |b| {
            let mut sink = Aggregate::new();
            b.run_with_sink(&mut sink)
        }),
        measure("jsonl", seeds, |b| {
            let path = std::env::temp_dir().join("bench_engine.jsonl");
            let mut sink = JsonLines::create(path.to_str().expect("utf-8 temp path"))
                .expect("open temp JSONL");
            b.run_with_sink(&mut sink)
        }),
        // The bounded queueing path, for comparison against `collect`
        // (the same grid on the unbounded default): the gap is the cost
        // of the queue pump, not of the subsystem existing — unbounded
        // runs install no queue layer and must stay at pre-queue speed.
        measure("droptail", seeds, |b| {
            let mut sink = Collect::new();
            b.queue(QueueSpec::drop_tail(16)).run_with_sink(&mut sink)
        }),
    ];

    // `--scaling` appends the city-mesh curve to the same JSON document,
    // so one invocation commits both the sink comparison and the
    // sparse-topology scaling numbers.
    let scaling = args.has("scaling").then(|| {
        println!("\nscaling curve (city mesh, Srcr + Poisson arrivals):");
        let sizes_arg: String = args.get("sizes", "100,1000,5000,10000".to_string());
        let sizes: Vec<usize> = sizes_arg
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    panic!("--sizes wants comma-separated node counts, got {sizes_arg:?}")
                })
            })
            .collect();
        let flows: usize = args.get("flows", 500);
        let packets: usize = args.get("scaling-packets", 8);
        let deadline: u64 = args.get("scaling-deadline", 30);
        scaling_curve(&sizes, flows, packets, deadline)
    });

    let mut fields: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "  \"{}\": {{\"secs\": {:.4}, \"runs_per_s\": {:.2}, \
                 \"records_high_water\": {}}}",
                m.label,
                m.secs,
                m.runs as f64 / m.secs,
                m.high_water,
            )
        })
        .collect();
    if let Some(points) = &scaling {
        let pts: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "    {{\"nodes\": {}, \"flows\": {}, \"secs\": {:.3}, \
                     \"records\": {}, \"peak_rss_mib\": {:.1}}}",
                    p.nodes, p.flows, p.secs, p.records, p.peak_rss_mib,
                )
            })
            .collect();
        fields.push(format!("  \"scaling\": [\n{}\n  ]", pts.join(",\n")));
    }
    let json = format!(
        "{{\n  \"bench\": \"scenario_engine_grid\",\n  \"threads\": {},\n  \
         \"grid_runs\": {},\n{}\n}}\n",
        threads(),
        results[0].runs,
        fields.join(",\n"),
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("\nwritten to {out}");
}

fn resume_demo(args: &Args, dir: &str) {
    banner("BENCH engine", "resumable checkpointed sweep demo");
    let seeds: u64 = args.get("seeds", 6);
    let jsonl = format!("{dir}/resume_demo.jsonl");
    let csv = format!("{dir}/resume_demo.csv");
    std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("create {dir}: {e}"));
    // Append-mode sinks + a checkpoint manifest: an interrupted run's
    // bytes survive, the manifest says where to pick up.
    let mut sink = Tee::new()
        .with(JsonLines::append(&jsonl).unwrap_or_else(|e| panic!("open {jsonl}: {e}")))
        .with(CsvAppend::append(&csv).unwrap_or_else(|e| panic!("open {csv}: {e}")));
    let packets: usize = args.get("packets", 384);
    let summary = Scenario::named("resume_demo")
        .testbed(1)
        .traffic(TrafficSpec::RandomPairs { count: 4, seed: 7 })
        .protocols(["MORE", "Srcr", "ExOR"])
        .seeds(1..=seeds)
        .packets(packets)
        .deadline(240)
        .threads(threads())
        .checkpoint(dir)
        .on_run_complete(|r, p| {
            println!(
                "  [{}/{} cells] {} seed {} traffic {}: {:.1} pkt/s",
                p.cells_done + 1,
                p.cells_total,
                r.protocol,
                r.seed,
                r.traffic_index,
                r.mean_throughput(),
            );
        })
        .run_with_sink(&mut sink);
    println!(
        "\n{} cells run, {} resumed from the manifest; records in {jsonl} and {csv}",
        summary.cells_run, summary.cells_skipped,
    );
}

fn main() {
    let args = Args::parse();
    let demo_dir: String = args.get("resume-demo", String::new());
    if demo_dir.is_empty() {
        bench(&args);
    } else {
        resume_demo(&args, &demo_dir);
    }
}
