//! Figure 4-5: multiple concurrent flows. Average per-flow throughput
//! (bars) ± std-dev over random runs for 1–4 flows. The paper's findings:
//! opportunistic routing keeps its edge but gains shrink with congestion,
//! and the MORE–ExOR gap closes (congestion hides ExOR's serialization).
//!
//! `cargo run --release -p more-bench --bin fig4_5 -- --runs 40`

use more_bench::common::{banner, threads, Args};
use more_bench::stats::{mean, std_dev};
use more_bench::ALL3;
use more_scenario::{Scenario, Sweep, TrafficSpec};

fn main() {
    let args = Args::parse();
    let runs: u64 = args.get("runs", 40);
    let packets: usize = args.get("packets", 128);
    let topo_seed: u64 = args.get("topo-seed", 1);

    banner(
        "Figure 4-5",
        "average per-flow throughput vs number of flows",
    );
    println!("{runs} random runs per point, {packets} packets per flow\n");
    println!(
        "{:>7} | {:>18} {:>18} {:>18}",
        "#flows", "Srcr", "ExOR", "MORE"
    );

    // Each run seed draws a fresh random flow set (distinct sources: a
    // node sources at most one flow), then every protocol runs the same
    // sets — the sweep varies how many of those flows run concurrently.
    let records = Scenario::named("fig4_5")
        .testbed(topo_seed)
        .traffic(TrafficSpec::RandomConcurrent {
            n_flows: 1,
            seed_offset: 1000,
            distinct_sources: true,
        })
        .protocols(ALL3)
        .sweep(Sweep::Flows(vec![1, 2, 3, 4]))
        .packets(packets)
        .seeds(1..=runs)
        .threads(threads())
        .run();

    if records.is_empty() {
        println!("(no runs — the scenario grid is empty; check --pairs/--runs)");
        return;
    }

    let mut per_count: Vec<Vec<f64>> = Vec::new();
    for n_flows in 1..=4usize {
        let mut row = format!("{n_flows:>7} |");
        let mut means = Vec::new();
        for proto in ALL3 {
            let tputs: Vec<f64> = records
                .iter()
                .filter(|r| r.protocol == proto && r.value == Some(n_flows as f64))
                .map(|r| r.mean_throughput())
                .collect();
            row.push_str(&format!("  {:7.1} ±{:6.1}", mean(&tputs), std_dev(&tputs)));
            means.push(mean(&tputs));
        }
        println!("{row}");
        per_count.push(means);
    }

    // Headline shape: the MORE/ExOR gap narrows as flows increase.
    let gap1 = per_count[0][2] / per_count[0][1];
    let gap4 = per_count[3][2] / per_count[3][1];
    println!(
        "\npaper: MORE/ExOR gap shrinks with more flows;  here: 1 flow {gap1:.2}x -> 4 flows {gap4:.2}x"
    );
    println!(
        "paper: per-flow throughput decreases with flow count for all protocols;  here MORE: {:.1} -> {:.1} pkt/s",
        per_count[0][2], per_count[3][2]
    );
}
