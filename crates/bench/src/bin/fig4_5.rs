//! Figure 4-5: multiple concurrent flows. Average per-flow throughput
//! (bars) ± std-dev over random runs for 1–4 flows. The paper's findings:
//! opportunistic routing keeps its edge but gains shrink with congestion,
//! and the MORE–ExOR gap closes (congestion hides ExOR's serialization).
//!
//! `cargo run --release -p more-bench --bin fig4_5 -- --runs 40`

use mesh_sim::SimConfig;
use mesh_topology::generate;
use more_bench::common::{banner, threads, Args};
use more_bench::stats::{mean, std_dev};
use more_bench::{random_pairs, run_flows, ExpConfig, Protocol};

fn main() {
    let args = Args::parse();
    let runs: usize = args.get("runs", 40);
    let packets: usize = args.get("packets", 128);
    let topo = generate::testbed(args.get("topo-seed", 1));

    banner("Figure 4-5", "average per-flow throughput vs number of flows");
    println!("{runs} random runs per point, {packets} packets per flow\n");
    println!(
        "{:>7} | {:>18} {:>18} {:>18}",
        "#flows", "Srcr", "ExOR", "MORE"
    );

    let mut per_count: Vec<Vec<f64>> = Vec::new();
    for n_flows in 1..=4usize {
        let mut row = format!("{n_flows:>7} |");
        let mut means = Vec::new();
        for proto in Protocol::ALL3 {
            let tputs: Vec<f64> = more_bench::par_map(
                (0..runs as u64).collect(),
                threads(),
                |&run_seed| {
                    // Distinct random flow sets per run; pairs chosen with
                    // distinct sources (a node sources at most one flow).
                    let mut flows = Vec::new();
                    let mut used = std::collections::HashSet::new();
                    for (s, d) in random_pairs(&topo, 40, 1000 + run_seed) {
                        if used.insert(s) {
                            flows.push((s, d));
                            if flows.len() == n_flows {
                                break;
                            }
                        }
                    }
                    let cfg = ExpConfig {
                        packets,
                        seed: run_seed + 1,
                        ..ExpConfig::default()
                    };
                    let results =
                        run_flows(proto, &topo, &flows, &cfg, &SimConfig::default());
                    mean(&results.iter().map(|r| r.throughput_pps).collect::<Vec<_>>())
                },
            );
            row.push_str(&format!("  {:7.1} ±{:6.1}", mean(&tputs), std_dev(&tputs)));
            means.push(mean(&tputs));
        }
        println!("{row}");
        per_count.push(means);
    }

    // Headline shape: the MORE/ExOR gap narrows as flows increase.
    let gap1 = per_count[0][2] / per_count[0][1];
    let gap4 = per_count[3][2] / per_count[3][1];
    println!(
        "\npaper: MORE/ExOR gap shrinks with more flows;  here: 1 flow {gap1:.2}x -> 4 flows {gap4:.2}x"
    );
    println!(
        "paper: per-flow throughput decreases with flow count for all protocols;  here MORE: {:.1} -> {:.1} pkt/s",
        per_count[0][2], per_count[3][2]
    );
}
