//! Shared CLI plumbing for the figure binaries.

use std::collections::HashMap;

/// Tiny `--key value` argument parser (no external deps).
pub struct Args {
    map: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`.
    pub fn parse() -> Self {
        let mut map = HashMap::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = args.next().unwrap_or_else(|| "true".into());
                map.insert(key.to_string(), value);
            }
        }
        Args { map }
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.map
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Worker-thread count for parallel sweeps.
pub fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Standard figure banner.
pub fn banner(fig: &str, what: &str) {
    println!("==================================================================");
    println!("{fig}: {what}");
    println!("==================================================================");
}
