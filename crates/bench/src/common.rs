//! Shared CLI plumbing for the figure binaries.

use std::collections::HashMap;

/// Tiny `--key value` argument parser (no external deps).
pub struct Args {
    map: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()`. A `--flag` followed by another
    /// `--option` (or nothing) is a bare switch and reads as `"true"`.
    pub fn parse() -> Self {
        let mut map = HashMap::new();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(a) = args.next() {
            if let Some(key) = a.strip_prefix("--") {
                let value = match args.peek() {
                    Some(v) if !v.starts_with("--") => args.next().expect("peeked value"),
                    _ => "true".into(),
                };
                map.insert(key.to_string(), value);
            }
        }
        Args { map }
    }

    /// True when `--key` was passed at all (with or without a value).
    pub fn has(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Typed lookup with default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        self.map
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

/// Worker-thread count for parallel sweeps.
pub fn threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Standard figure banner.
pub fn banner(fig: &str, what: &str) {
    println!("==================================================================");
    println!("{fig}: {what}");
    println!("==================================================================");
}
