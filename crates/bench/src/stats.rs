//! Small statistics helpers for the figure harnesses.

/// Sorted copy of the input.
fn sorted(values: &[f64]) -> Vec<f64> {
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    v
}

/// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on the sorted data.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q));
    let v = sorted(values);
    let idx = ((q * (v.len() - 1) as f64).round() as usize).min(v.len() - 1);
    v[idx]
}

/// Median (0.5-quantile).
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty data");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// CDF sample points `(value, cumulative fraction)` — what the paper's
/// CDF figures plot.
pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let v = sorted(values);
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Prints a CDF as `value  fraction` rows, downsampled to about
/// `max_rows` evenly spaced points with the final point always included
/// (so the series visibly reaches 1.0).
///
/// Guarded against the historical `step_by(len / 12)` pattern: empty
/// input prints a placeholder instead of panicking, and short inputs
/// print every point instead of nothing.
pub fn print_cdf(values: &[f64], max_rows: usize) {
    for line in cdf_lines(values, max_rows) {
        println!("{line}");
    }
}

/// The rows [`print_cdf`] prints (separated for testability).
pub fn cdf_lines(values: &[f64], max_rows: usize) -> Vec<String> {
    if values.is_empty() {
        return vec!["  (no data)".to_string()];
    }
    let points = cdf(values);
    let step = (points.len() / max_rows.max(1)).max(1);
    let mut out: Vec<String> = points
        .iter()
        .step_by(step)
        .map(|(x, f)| format!("  {x:8.1}  {f:.3}"))
        .collect();
    let last = points.len() - 1;
    if !last.is_multiple_of(step) {
        let (x, f) = points[last];
        out.push(format!("  {x:8.1}  {f:.3}"));
    }
    out
}

/// Renders a CDF as a fixed-grid ASCII table of the requested quantiles.
pub fn cdf_table(label: &str, values: &[f64], quantiles: &[f64]) -> String {
    let mut out = format!("{label:>14} |");
    for &q in quantiles {
        out.push_str(&format!(" p{:02.0}={:8.1}", q * 100.0, quantile(values, q)));
    }
    out
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(median(&v), 3.0);
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
    }

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.138).abs() < 0.01);
    }

    #[test]
    fn cdf_monotone() {
        let points = cdf(&[3.0, 1.0, 2.0]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0], (1.0, 1.0 / 3.0));
        assert_eq!(points[2], (3.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_median_panics() {
        let _ = median(&[]);
    }

    #[test]
    fn cdf_lines_never_panic_and_reach_one() {
        assert_eq!(cdf_lines(&[], 12), vec!["  (no data)".to_string()]);
        for n in [1usize, 2, 5, 11, 12, 13, 100] {
            let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let lines = cdf_lines(&values, 12);
            assert!(!lines.is_empty(), "n={n}");
            assert!(
                lines.last().expect("non-empty").contains("1.000"),
                "n={n}: CDF must end at 1.0, got {lines:?}"
            );
            assert!(lines.len() <= 14, "n={n}: too many rows ({})", lines.len());
        }
    }

    #[test]
    fn nan_values_sort_last_and_do_not_panic() {
        // total_cmp regression: partial_cmp().expect() used to panic here.
        let v = [2.0, f64::NAN, 1.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(median(&v), 2.0, "NaN sorts after every finite value");
        let points = cdf(&v);
        assert_eq!(points.len(), 3);
        assert!(points[2].0.is_nan());
    }
}
