//! Small statistics helpers for the figure harnesses.

/// Sorted copy of the input.
fn sorted(values: &[f64]) -> Vec<f64> {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in metrics"));
    v
}

/// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on the sorted data.
pub fn quantile(values: &[f64], q: f64) -> f64 {
    assert!(!values.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q));
    let v = sorted(values);
    let idx = ((q * (v.len() - 1) as f64).round() as usize).min(v.len() - 1);
    v[idx]
}

/// Median (0.5-quantile).
pub fn median(values: &[f64]) -> f64 {
    quantile(values, 0.5)
}

/// Arithmetic mean.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty data");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// CDF sample points `(value, cumulative fraction)` — what the paper's
/// CDF figures plot.
pub fn cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let v = sorted(values);
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Renders a CDF as a fixed-grid ASCII table of the requested quantiles.
pub fn cdf_table(label: &str, values: &[f64], quantiles: &[f64]) -> String {
    let mut out = format!("{label:>14} |");
    for &q in quantiles {
        out.push_str(&format!(" p{:02.0}={:8.1}", q * 100.0, quantile(values, q)));
    }
    out
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(median(&v), 3.0);
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 5.0);
    }

    #[test]
    fn mean_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&v) - 5.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.138).abs() < 0.01);
    }

    #[test]
    fn cdf_monotone() {
        let points = cdf(&[3.0, 1.0, 2.0]);
        assert_eq!(points.len(), 3);
        assert_eq!(points[0], (1.0, 1.0 / 3.0));
        assert_eq!(points[2], (3.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_median_panics() {
        let _ = median(&[]);
    }
}
