//! Benchmarks of the scenario engine itself.
//!
//! The registry redesign moved every run behind `Box<dyn
//! ErasedFlowAgent>` (payload type erasure + dynamic dispatch). These
//! benches quantify that cost against the old monomorphic path — the
//! erasure adds one `Rc` per transmitted frame and a payload clone per
//! reception, which must stay noise next to event-queue and medium
//! work — and measure a whole scenario grid end-to-end.

use criterion::{criterion_group, criterion_main, Criterion};
use mesh_sim::{ChannelSpec, Erased, ErasedFlowAgent, QueueSpec, SimConfig, Simulator, SEC};
use mesh_topology::{generate, NodeId};
use more_core::{MoreAgent, MoreConfig};
use more_scenario::{Scenario, TopologySpec, TrafficModelSpec, TrafficSpec};
use std::hint::black_box;
use std::sync::Arc;

const PACKETS: usize = 64;

fn line() -> mesh_topology::Topology {
    generate::line(3, 0.85, 0.2, 25.0)
}

/// The pre-redesign path: a concrete `Simulator<MoreAgent>`.
#[allow(clippy::borrowed_box)] // run_until's stop callback receives &A = &Box<dyn _>
fn bench_direct_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_engine/more_transfer");
    let topo = line();
    group.bench_function("direct_generic", |b| {
        b.iter(|| {
            let mut agent = MoreAgent::new(topo.clone(), MoreConfig::default());
            agent.add_flow(1, NodeId(0), NodeId(3), PACKETS);
            let mut sim = Simulator::new(topo.clone(), SimConfig::default(), agent, 1);
            sim.kick(NodeId(0));
            sim.run_until(600 * SEC, |a: &MoreAgent| a.all_done());
            black_box(sim.stats.total_tx())
        })
    });
    // The registry path: same run through payload erasure + vtables.
    group.bench_function("erased_dyn", |b| {
        b.iter(|| {
            let mut agent = MoreAgent::new(topo.clone(), MoreConfig::default());
            agent.add_flow(1, NodeId(0), NodeId(3), PACKETS);
            let boxed: Box<dyn ErasedFlowAgent> = Box::new(Erased(agent));
            let mut sim = Simulator::new(topo.clone(), SimConfig::default(), boxed, 1);
            sim.kick(NodeId(0));
            sim.run_until(600 * SEC, |a: &Box<dyn ErasedFlowAgent>| a.flows_done());
            black_box(sim.stats.total_tx())
        })
    });
    group.finish();
}

/// Channel-model cost: the same MORE transfer on static air (the
/// trait-dispatched default, which must stay at pre-channel speed) and
/// on bursty Gilbert–Elliott air (adds per-epoch state evolution).
fn bench_channel_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_engine/channel");
    let topo = line();
    let specs = [
        ("static", ChannelSpec::Static),
        (
            "gilbert_elliott",
            ChannelSpec::bursty_matched(0.0, 0.05, 0.2, 10),
        ),
    ];
    for (name, spec) in specs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut agent = MoreAgent::new(topo.clone(), MoreConfig::default());
                agent.add_flow(1, NodeId(0), NodeId(3), PACKETS);
                let mut sim =
                    Simulator::with_channel(topo.clone(), SimConfig::default(), &spec, agent, 1);
                sim.kick(NodeId(0));
                sim.run_until(600 * SEC, |a: &MoreAgent| a.all_done());
                black_box(sim.stats.total_tx())
            })
        });
    }
    group.finish();
}

/// Queue-subsystem cost: the same MORE transfer through
/// [`Simulator::with_queue`]. Unbounded installs no queue layer at all —
/// the transmit path must stay at pre-queue speed (the ≤ 2% gate the
/// committed `BENCH_engine.json` tracks) — while DropTail and CHOKe pay
/// for the pump loop, classification, and (for CHOKe) the random peek.
fn bench_queue_disciplines(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_engine/queue");
    let topo = line();
    let specs = [
        ("unbounded", QueueSpec::Unbounded),
        ("droptail", QueueSpec::drop_tail(16)),
        ("choke", QueueSpec::choke(16)),
    ];
    for (name, spec) in specs {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut agent = MoreAgent::new(topo.clone(), MoreConfig::default());
                agent.add_flow(1, NodeId(0), NodeId(3), PACKETS);
                let mut sim = Simulator::with_queue(
                    topo.clone(),
                    SimConfig::default(),
                    &ChannelSpec::Static,
                    &spec,
                    agent,
                    1,
                );
                sim.kick(NodeId(0));
                sim.run_until(600 * SEC, |a: &MoreAgent| a.all_done());
                black_box(sim.stats.total_tx())
            })
        });
    }
    group.finish();
}

/// Traffic-model cost: the same MORE transfer expanded by the legacy
/// `TrafficSpec` shorthand and through the trait-dispatched
/// `TrafficModelSpec::Static` (both are the `StaticModel` path, which
/// must stay at pre-traffic-model speed), plus a staggered-arrival run
/// that actually exercises the mid-run traffic queue.
fn bench_traffic_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_engine/traffic");
    let topo = Arc::new(line());
    let run = |traffic: TrafficModelSpec| {
        let records = Scenario::named("bench")
            .topology(TopologySpec::Fixed(topo.clone()))
            .traffic_model(traffic)
            .protocol("MORE")
            .packets(PACKETS)
            .deadline(120)
            .threads(1)
            .run();
        black_box(records.len())
    };
    group.bench_function("static_legacy_shorthand", |b| {
        b.iter(|| {
            run(TrafficModelSpec::Static(TrafficSpec::SinglePair {
                src: NodeId(0),
                dst: NodeId(3),
            }))
        })
    });
    group.bench_function("static_trait_dispatch", |b| {
        b.iter(|| {
            run(TrafficModelSpec::Static(TrafficSpec::EachPair(vec![(
                NodeId(0),
                NodeId(3),
            )])))
        })
    });
    group.bench_function("staggered_dynamic", |b| {
        b.iter(|| {
            run(TrafficModelSpec::Staggered {
                n_flows: 2,
                gap_ms: 200,
                hold_ms: None,
            })
        })
    });
    group.finish();
}

/// A small three-protocol grid through the full builder machinery.
fn bench_scenario_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_engine/grid");
    let topo = Arc::new(line());
    group.bench_function("3protos_x_2seeds", |b| {
        b.iter(|| {
            let records = Scenario::named("bench")
                .topology(TopologySpec::Fixed(topo.clone()))
                .traffic(TrafficSpec::SinglePair {
                    src: NodeId(0),
                    dst: NodeId(3),
                })
                .protocols(["Srcr", "ExOR", "MORE"])
                .packets(32)
                .deadline(120)
                .seeds(1..=2)
                .threads(1)
                .run();
            assert_eq!(records.len(), 6);
            black_box(records.len())
        })
    });
    group.finish();
}

/// Streaming-sink cost over the same grid: the default Collect path
/// (the legacy materialize-everything shape, which must stay at
/// pre-streaming speed) against the bounded-memory Aggregate sink.
fn bench_sink_pipeline(c: &mut Criterion) {
    use more_scenario::sink::{Aggregate, Collect};
    let mut group = c.benchmark_group("scenario_engine/sink");
    let topo = Arc::new(line());
    let builder = |topo: &Arc<mesh_topology::Topology>| {
        Scenario::named("bench")
            .topology(TopologySpec::Fixed(topo.clone()))
            .traffic(TrafficSpec::SinglePair {
                src: NodeId(0),
                dst: NodeId(3),
            })
            .protocols(["Srcr", "MORE"])
            .packets(32)
            .deadline(120)
            .seeds(1..=2)
            .threads(1)
    };
    group.bench_function("collect", |b| {
        b.iter(|| {
            let mut sink = Collect::new();
            let summary = builder(&topo).run_with_sink(&mut sink);
            assert_eq!(summary.records_high_water, 4, "Collect holds the grid");
            black_box(summary.records)
        })
    });
    group.bench_function("aggregate", |b| {
        b.iter(|| {
            let mut sink = Aggregate::new();
            let summary = builder(&topo).run_with_sink(&mut sink);
            assert!(summary.records_high_water <= 1, "bounded memory");
            black_box(summary.records)
        })
    });
    group.finish();
}

criterion_group!(
    scenario_engine,
    bench_direct_dispatch,
    bench_channel_models,
    bench_queue_disciplines,
    bench_traffic_models,
    bench_scenario_grid,
    bench_sink_pipeline
);
criterion_main!(scenario_engine);
