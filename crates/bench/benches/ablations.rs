//! Ablation micro-benchmarks for the design choices DESIGN.md calls out
//! (§3.2.3's three fast-coding techniques):
//!
//! * innovative-only buffering vs coding every reception — the cost of a
//!   forwarder combine grows with the pool, so discarding non-innovative
//!   packets bounds it at K;
//! * vector-only innovativeness check vs full-payload Gaussian
//!   elimination — why "operate on code vectors" wins;
//! * pre-coding — emitting a prepared packet vs combining on demand.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gf256::slice_ops;
use more_core::batch_natives;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rlnc::{Decoder, ForwarderBuffer, InnovationTracker, SourceEncoder};
use std::hint::black_box;

const PACKET: usize = 1500;
const K: usize = 32;

/// §3.2.3a: combining `n` buffered packets costs n·S multiply-adds. The
/// innovative-only rule bounds n at K; a naive forwarder that buffers
/// every reception would combine 3-5× more.
fn bench_combine_cost_vs_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/combine_cost_vs_pool_size");
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for pool in [32usize, 96, 160] {
        let rows: Vec<Vec<u8>> = (0..pool)
            .map(|_| (0..PACKET).map(|_| rng.gen()).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(pool), &pool, |b, _| {
            b.iter(|| {
                let mut out = vec![0u8; PACKET];
                for row in &rows {
                    slice_ops::mul_add_assign(&mut out, row, gf256::Gf256(7));
                }
                black_box(out)
            })
        });
    }
    group.finish();
}

/// §3.2.3b: checking independence on code vectors (K bytes) vs running
/// the arriving payload through the decoder (S bytes of row ops).
fn bench_vector_check_vs_full_elimination(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/innovativeness_check");
    let natives = batch_natives(1, 0, K, PACKET);
    let enc = SourceEncoder::new(natives).expect("valid batch");
    let mut rng = ChaCha8Rng::seed_from_u64(2);

    let mut tracker = InnovationTracker::new(K);
    let mut full = Decoder::new(K, PACKET);
    for _ in 0..K - 1 {
        let p = enc.encode(&mut rng);
        tracker.absorb(p.vector());
        full.receive(&p);
    }
    let probe = enc.encode(&mut rng);

    group.bench_function("vectors_only", |b| {
        b.iter(|| black_box(tracker.is_innovative(probe.vector())))
    });
    group.bench_function("full_payload_elimination", |b| {
        b.iter(|| {
            let mut d = full.clone();
            black_box(d.receive(&probe))
        })
    });
    group.finish();
}

/// §3.2.3c: handing the driver a pre-coded packet vs building the
/// combination at transmit time.
fn bench_precoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations/precoding");
    let natives = batch_natives(1, 0, K, PACKET);
    let enc = SourceEncoder::new(natives).expect("valid batch");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut buf = ForwarderBuffer::new(K, PACKET);
    while buf.rank() < K {
        buf.receive(&enc.encode(&mut rng), &mut rng);
    }
    // `emit` hands out the prepared packet and re-codes in the background
    // slot; `precode`+`emit` forces the combine onto the critical path.
    group.bench_function("emit_precoded", |b| {
        b.iter(|| black_box(buf.emit(&mut rng)))
    });
    group.bench_function("combine_at_tx_time", |b| {
        b.iter(|| {
            buf.precode(&mut rng); // the K-way combine, on the hot path
            black_box(buf.emit(&mut rng))
        })
    });
    group.finish();
}

criterion_group!(
    ablations,
    bench_combine_cost_vs_pool,
    bench_vector_check_vs_full_elimination,
    bench_precoding
);
criterion_main!(ablations);
