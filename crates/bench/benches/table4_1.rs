//! Table 4.1: average computational cost of packet operations in MORE.
//!
//! The paper measures, for K = 32 and 1500 B packets on a Celeron 800 MHz:
//!
//! | operation          | avg    |
//! |--------------------|--------|
//! | independence check | 10 µs  |
//! | coding at source   | 270 µs |
//! | decoding           | 260 µs |
//!
//! Absolute numbers on modern hardware are far smaller; the *shape* to
//! reproduce is: coding ≈ decoding ≫ independence check, and the coding
//! cost scaling linearly in K (§4.6a ties K to the sustainable bit-rate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use more_core::batch_natives;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rlnc::{CodeVector, Decoder, InnovationTracker, SourceEncoder};
use std::hint::black_box;

const PACKET: usize = 1500;

fn bench_independence_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_1/independence_check");
    for k in [8usize, 32, 128] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // A tracker holding K−1 vectors: the worst-case check.
        let mut tracker = InnovationTracker::new(k);
        while tracker.rank() < k - 1 {
            tracker.absorb(CodeVector::random(k, &mut rng));
        }
        let probe = CodeVector::random(k, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(tracker.is_innovative(black_box(&probe))))
        });
    }
    group.finish();
}

fn bench_coding_at_source(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_1/coding_at_source");
    for k in [8usize, 32, 128] {
        let natives = batch_natives(1, 0, k, PACKET);
        let enc = SourceEncoder::new(natives).expect("valid batch");
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        group.throughput(Throughput::Bytes(PACKET as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(enc.encode(&mut rng)))
        });
    }
    group.finish();
}

fn bench_decoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_1/decoding");
    for k in [8usize, 32, 128] {
        let natives = batch_natives(1, 0, k, PACKET);
        let enc = SourceEncoder::new(natives).expect("valid batch");
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // Pre-generate a decodable set of packets; per-packet decode cost
        // = total batch decode / K (matches the paper's per-packet form).
        let packets: Vec<_> = (0..4 * k).map(|_| enc.encode(&mut rng)).collect();
        group.throughput(Throughput::Bytes(PACKET as u64 * k as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| {
                let mut dec = Decoder::new(k, PACKET);
                for p in &packets {
                    if dec.is_complete() {
                        break;
                    }
                    dec.receive(p);
                }
                assert!(dec.is_complete(), "not enough packets to decode");
                black_box(dec.rank())
            })
        });
    }
    group.finish();
}

fn bench_forwarder_recode(c: &mut Criterion) {
    // Not a Table 4.1 row, but the paper notes the forwarder's coding cost
    // is bounded by the source's (it combines at most rank ≤ K packets);
    // verify the bound holds.
    let mut group = c.benchmark_group("table4_1/forwarder_recode");
    let k = 32usize;
    let natives = batch_natives(1, 0, k, PACKET);
    let enc = SourceEncoder::new(natives).expect("valid batch");
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for stored in [4usize, 16, 32] {
        let mut buf = rlnc::ForwarderBuffer::new(k, PACKET);
        while buf.rank() < stored {
            buf.receive(&enc.encode(&mut rng), &mut rng);
        }
        group.bench_with_input(BenchmarkId::from_parameter(stored), &stored, |b, _| {
            b.iter(|| black_box(buf.emit(&mut rng)))
        });
    }
    group.finish();
}

criterion_group!(
    table4_1,
    bench_independence_check,
    bench_coding_at_source,
    bench_decoding,
    bench_forwarder_recode
);
criterion_main!(table4_1);
