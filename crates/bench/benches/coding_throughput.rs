//! Coding-throughput micro-benches: wide vs scalar GF(256) kernels on the
//! RLNC hot path.
//!
//! Three groups:
//!
//! * `coding/encode` — source-side coded-packet production (`Σ cᵢ·pᵢ` via
//!   the batched `axpy_many` pass) per kernel family, across K;
//! * `coding/axpy` — the raw batching contract: one fused `axpy_many` pass
//!   vs K separate `mul_add_assign` passes over the same sources;
//! * `coding/decode` — full-batch incremental decode per kernel family
//!   (per-packet cost = measured time / K).
//!
//! `bench_coding` (the binary) measures the same path with a plain timer
//! and writes `BENCH_coding.json`; this harness is for quick relative
//! comparisons during development.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gf256::slice_ops::{self, set_kernel, Kernel};
use gf256::Gf256;
use more_core::batch_natives;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rlnc::{Decoder, SourceEncoder};
use std::hint::black_box;

const PACKET: usize = 1500;

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("coding/encode");
    for k in [8usize, 32, 128] {
        let enc = SourceEncoder::new(batch_natives(1, 0, k, PACKET)).expect("valid batch");
        group.throughput(Throughput::Bytes(PACKET as u64));
        for (label, kernel) in [("scalar", Kernel::Scalar), ("wide", Kernel::Wide)] {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            set_kernel(kernel);
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| black_box(enc.encode(&mut rng)))
            });
            set_kernel(Kernel::Auto);
        }
    }
    group.finish();
}

fn bench_axpy(c: &mut Criterion) {
    let mut group = c.benchmark_group("coding/axpy");
    let k = 32usize;
    let sources: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..PACKET).map(|j| ((i * 31 + j) % 251) as u8).collect())
        .collect();
    let coeffs: Vec<Gf256> = (1..=k).map(|i| Gf256((i * 7 % 255 + 1) as u8)).collect();
    let terms: Vec<(Gf256, &[u8])> = coeffs
        .iter()
        .zip(&sources)
        .map(|(&c, s)| (c, s.as_slice()))
        .collect();
    group.throughput(Throughput::Bytes((PACKET * k) as u64));
    group.bench_function("fused_axpy_many", |b| {
        b.iter(|| {
            let mut dst = vec![0u8; PACKET];
            slice_ops::axpy_many(&mut dst, black_box(&terms));
            black_box(dst)
        })
    });
    group.bench_function("k_separate_passes", |b| {
        b.iter(|| {
            let mut dst = vec![0u8; PACKET];
            for &(c, s) in black_box(&terms) {
                slice_ops::mul_add_assign(&mut dst, s, c);
            }
            black_box(dst)
        })
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("coding/decode");
    for k in [8usize, 32] {
        let enc = SourceEncoder::new(batch_natives(1, 0, k, PACKET)).expect("valid batch");
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let packets: Vec<_> = (0..2 * k).map(|_| enc.encode(&mut rng)).collect();
        group.throughput(Throughput::Bytes((PACKET * k) as u64));
        for (label, kernel) in [("scalar", Kernel::Scalar), ("wide", Kernel::Wide)] {
            set_kernel(kernel);
            group.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| {
                    let mut dec = Decoder::new(k, PACKET);
                    for p in &packets {
                        if dec.is_complete() {
                            break;
                        }
                        dec.receive(p);
                    }
                    assert!(dec.is_complete(), "not enough packets to decode");
                    black_box(dec.rank())
                })
            });
            set_kernel(Kernel::Auto);
        }
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_axpy, bench_decode);
criterion_main!(benches);
