//! Probe-based link estimation, standing in for Roofnet's ETX module.
//!
//! The paper measures pairwise delivery probabilities with ten minutes of
//! periodic ping probes before every run (§4.1.2) and feeds the same
//! estimates to all three protocols. [`LinkEstimator`] reproduces that
//! measurement process: each directed link's estimate is the empirical
//! success rate of `probes` Bernoulli trials at the true probability —
//! binomially distributed noise, exactly what a real prober sees.

use crate::Topology;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for the probing process.
#[derive(Clone, Copy, Debug)]
pub struct LinkEstimator {
    /// Number of probe frames per directed link (Roofnet sends one probe
    /// per second; 600 probes ≈ the paper's 10-minute warm-up).
    pub probes: u32,
    /// Links whose *estimated* delivery falls below this are dropped from
    /// the estimate, as a real prober never hears them often enough to
    /// advertise them.
    pub min_delivery: f64,
}

impl Default for LinkEstimator {
    fn default() -> Self {
        LinkEstimator {
            probes: 600,
            min_delivery: 0.05,
        }
    }
}

impl LinkEstimator {
    /// Produces the estimated topology a deployment would measure.
    ///
    /// Deterministic in `seed`. The returned topology preserves node count
    /// and positions; only delivery probabilities are perturbed.
    #[allow(clippy::needless_range_loop)] // index pairs (i,j) address a square matrix
    pub fn estimate(&self, truth: &Topology, seed: u64) -> Topology {
        assert!(self.probes > 0, "need at least one probe");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let n = truth.n();
        let mut m = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let p = truth.matrix()[i][j];
                if p <= 0.0 {
                    continue;
                }
                let mut successes = 0u32;
                for _ in 0..self.probes {
                    if rng.gen::<f64>() < p {
                        successes += 1;
                    }
                }
                let est = successes as f64 / self.probes as f64;
                if est >= self.min_delivery {
                    m[i][j] = est;
                }
            }
        }
        let mut t = Topology::from_matrix(format!("{}-est", truth.name), m);
        if let Some(pos) = truth.positions() {
            t = t.with_positions(pos.to_vec());
        }
        t
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use crate::generate;

    #[test]
    fn estimates_converge_with_many_probes() {
        let truth = generate::testbed(1);
        let est = LinkEstimator {
            probes: 20_000,
            min_delivery: 0.05,
        }
        .estimate(&truth, 99);
        for l in truth.links() {
            let e = est.delivery(l.from, l.to);
            assert!(
                (e - l.delivery).abs() < 0.02,
                "estimate {e} far from truth {} on {:?}",
                l.delivery,
                (l.from, l.to)
            );
        }
    }

    #[test]
    fn estimates_are_noisy_with_few_probes() {
        let truth = generate::testbed(1);
        let est = LinkEstimator {
            probes: 30,
            min_delivery: 0.0,
        }
        .estimate(&truth, 7);
        // At 30 probes the estimates quantize to 1/30 steps; at least one
        // link must differ from truth.
        let any_diff = truth
            .links()
            .any(|l| (est.delivery(l.from, l.to) - l.delivery).abs() > 1e-9);
        assert!(any_diff);
    }

    #[test]
    fn deterministic_in_seed() {
        let truth = generate::testbed(2);
        let e = LinkEstimator::default();
        let a = e.estimate(&truth, 5);
        let b = e.estimate(&truth, 5);
        assert_eq!(a.matrix(), b.matrix());
        let c = e.estimate(&truth, 6);
        assert_ne!(a.matrix(), c.matrix());
    }

    #[test]
    fn preserves_positions_and_structure() {
        let truth = generate::testbed(3);
        let est = LinkEstimator::default().estimate(&truth, 1);
        assert_eq!(est.n(), truth.n());
        assert!(est.positions().is_some());
        // No estimated link where none exists.
        for i in truth.nodes() {
            for j in truth.nodes() {
                if truth.delivery(i, j) == 0.0 {
                    assert_eq!(est.delivery(i, j), 0.0);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn zero_probes_panics() {
        let truth = generate::motivating();
        LinkEstimator {
            probes: 0,
            min_delivery: 0.0,
        }
        .estimate(&truth, 0);
    }
}
