//! Probe-based link estimation, standing in for Roofnet's ETX module.
//!
//! The paper measures pairwise delivery probabilities with ten minutes of
//! periodic ping probes before every run (§4.1.2) and feeds the same
//! estimates to all three protocols. [`LinkEstimator`] reproduces that
//! measurement process: each directed link's estimate is the empirical
//! success rate of `probes` Bernoulli trials at the true probability —
//! binomially distributed noise, exactly what a real prober sees.
//!
//! [`LinkEstimator::estimate`] probes a *static* truth matrix.
//! [`LinkEstimator::estimate_live`] is the windowed-probe mode: probe
//! rounds are spaced in time and each round samples an
//! instantaneous-delivery callback, so ETX/EOTX inputs can be measured
//! from a live, time-varying channel (`mesh_sim::channel`) rather than
//! read off the matrix — separating what the routing layer *believes*
//! from what the air *does*.

// xtask: allow(panic_path, file) -- probe-window tallies are sized to the topology's node count and indexed by validated NodeIds.

use crate::{Link, NodeId, Topology};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::streams::PROBE_STREAM;

/// Configuration for the probing process.
#[derive(Clone, Copy, Debug)]
pub struct LinkEstimator {
    /// Number of probe frames per directed link (Roofnet sends one probe
    /// per second; 600 probes ≈ the paper's 10-minute warm-up).
    pub probes: u32,
    /// Links whose *estimated* delivery falls below this are dropped from
    /// the estimate, as a real prober never hears them often enough to
    /// advertise them.
    pub min_delivery: f64,
}

impl Default for LinkEstimator {
    fn default() -> Self {
        LinkEstimator {
            probes: 600,
            min_delivery: 0.05,
        }
    }
}

impl LinkEstimator {
    /// Produces the estimated topology a deployment would measure.
    ///
    /// Deterministic in `seed`. The returned topology preserves node count
    /// and positions; only delivery probabilities are perturbed.
    ///
    /// Probes only the truth topology's links — sparse meshes cost
    /// O(E · probes) RNG draws, not O(n² · probes). The draw sequence is
    /// identical to the historical row-major matrix scan, which skipped
    /// zero-probability pairs before drawing anything.
    pub fn estimate(&self, truth: &Topology, seed: u64) -> Topology {
        assert!(self.probes > 0, "need at least one probe");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut links = Vec::new();
        for l in truth.links() {
            let mut successes = 0u32;
            for _ in 0..self.probes {
                if rng.gen::<f64>() < l.delivery {
                    successes += 1;
                }
            }
            let est = successes as f64 / self.probes as f64;
            if est >= self.min_delivery {
                links.push(Link {
                    from: l.from,
                    to: l.to,
                    delivery: est,
                });
            }
        }
        let mut t = Topology::from_links(format!("{}-est", truth.name), truth.n(), links);
        if let Some(pos) = truth.positions() {
            t = t.with_positions(pos.to_vec());
        }
        t
    }

    /// Windowed probing of a live channel: `probes` rounds, one every
    /// `interval_us` simulated microseconds, each sampling
    /// `delivery_at(tx, rx, now)` for every ordered node pair (a real
    /// prober broadcasts and everyone listens — channels like shadowing
    /// can carry links the static matrix never had) and drawing one
    /// Bernoulli probe at that instantaneous probability.
    ///
    /// The estimate of a link is its success rate over the whole window —
    /// a bursty channel that averages to the static matrix yields the same
    /// beliefs in expectation, while a drifting one leaves routing behind
    /// the truth. Deterministic in `seed`; probe draws use their own
    /// stream (`seed ^ PROBE_STREAM`), independent of both the run's main
    /// RNG and whatever stream the callback's channel model owns. Links
    /// estimated below `min_delivery` are dropped, as in
    /// [`LinkEstimator::estimate`].
    ///
    /// ```
    /// use mesh_topology::estimator::LinkEstimator;
    /// use mesh_topology::generate;
    ///
    /// let truth = generate::line(2, 0.8, 0.0, 30.0);
    /// let est = LinkEstimator { probes: 2000, min_delivery: 0.05 };
    /// // A static closure reduces to the classic estimator's behaviour.
    /// let believed = est.estimate_live(&truth, 7, 1_000, |tx, rx, _now| {
    ///     truth.delivery(tx, rx)
    /// });
    /// assert!((believed.delivery(0.into(), 1.into()) - 0.8).abs() < 0.05);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics when `probes` is zero.
    pub fn estimate_live(
        &self,
        truth: &Topology,
        seed: u64,
        interval_us: u64,
        delivery_at: impl FnMut(NodeId, NodeId, u64) -> f64,
    ) -> Topology {
        let n = truth.n();
        let pairs: Vec<(NodeId, NodeId)> = (0..n)
            .flat_map(|i| {
                (0..n)
                    .filter(move |&j| j != i)
                    .map(move |j| (NodeId(i), NodeId(j)))
            })
            .collect();
        self.estimate_live_candidates(truth, seed, interval_us, &pairs, delivery_at)
    }

    /// Windowed probing restricted to the given ordered `candidates`
    /// (distinct pairs; any order — each round probes them in slice
    /// order).
    ///
    /// This is the sparse-mesh fast path: when the channel can say which
    /// pairs *might* ever deliver (its static links plus `may_reach`
    /// extensions), probing only those keeps the window at
    /// O(candidates · probes) draws. The caller must pass a superset of
    /// every pair the callback can report non-zero for — unprobed pairs
    /// are simply never heard, exactly as a real prober never hears a
    /// node outside radio range. With the full ordered-pair list this is
    /// [`LinkEstimator::estimate_live`], draw for draw.
    ///
    /// # Panics
    ///
    /// Panics when `probes` is zero or a candidate pair repeats.
    pub fn estimate_live_candidates(
        &self,
        truth: &Topology,
        seed: u64,
        interval_us: u64,
        candidates: &[(NodeId, NodeId)],
        mut delivery_at: impl FnMut(NodeId, NodeId, u64) -> f64,
    ) -> Topology {
        assert!(self.probes > 0, "need at least one probe");
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ PROBE_STREAM);
        let mut successes = vec![0u32; candidates.len()];
        for round in 0..self.probes {
            let now = round as u64 * interval_us;
            for (k, &(i, j)) in candidates.iter().enumerate() {
                let p = delivery_at(i, j, now);
                if rng.gen::<f64>() < p {
                    successes[k] += 1;
                }
            }
        }
        let mut links = Vec::new();
        for (k, &(i, j)) in candidates.iter().enumerate() {
            let est = successes[k] as f64 / self.probes as f64;
            if est >= self.min_delivery {
                links.push(Link {
                    from: i,
                    to: j,
                    delivery: est,
                });
            }
        }
        let mut t = Topology::from_links(format!("{}-est", truth.name), truth.n(), links);
        if let Some(pos) = truth.positions() {
            t = t.with_positions(pos.to_vec());
        }
        t
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use crate::generate;

    #[test]
    fn estimates_converge_with_many_probes() {
        let truth = generate::testbed(1);
        let est = LinkEstimator {
            probes: 20_000,
            min_delivery: 0.05,
        }
        .estimate(&truth, 99);
        for l in truth.links() {
            let e = est.delivery(l.from, l.to);
            assert!(
                (e - l.delivery).abs() < 0.02,
                "estimate {e} far from truth {} on {:?}",
                l.delivery,
                (l.from, l.to)
            );
        }
    }

    #[test]
    fn estimates_are_noisy_with_few_probes() {
        let truth = generate::testbed(1);
        let est = LinkEstimator {
            probes: 30,
            min_delivery: 0.0,
        }
        .estimate(&truth, 7);
        // At 30 probes the estimates quantize to 1/30 steps; at least one
        // link must differ from truth.
        let any_diff = truth
            .links()
            .any(|l| (est.delivery(l.from, l.to) - l.delivery).abs() > 1e-9);
        assert!(any_diff);
    }

    #[test]
    fn deterministic_in_seed() {
        let truth = generate::testbed(2);
        let e = LinkEstimator::default();
        let a = e.estimate(&truth, 5);
        let b = e.estimate(&truth, 5);
        assert_eq!(a.matrix(), b.matrix());
        let c = e.estimate(&truth, 6);
        assert_ne!(a.matrix(), c.matrix());
    }

    #[test]
    fn preserves_positions_and_structure() {
        let truth = generate::testbed(3);
        let est = LinkEstimator::default().estimate(&truth, 1);
        assert_eq!(est.n(), truth.n());
        assert!(est.positions().is_some());
        // No estimated link where none exists.
        for i in truth.nodes() {
            for j in truth.nodes() {
                if truth.delivery(i, j) == 0.0 {
                    assert_eq!(est.delivery(i, j), 0.0);
                }
            }
        }
    }

    #[test]
    fn windowed_probing_averages_a_flapping_link() {
        // The link alternates 1.0 / 0.0 every second; the window mean is 0.5.
        let truth = generate::line(1, 0.9, 0.0, 30.0);
        let est = LinkEstimator {
            probes: 4000,
            min_delivery: 0.05,
        };
        let believed = est.estimate_live(&truth, 3, 1_000_000, |_, _, now| {
            if (now / 1_000_000).is_multiple_of(2) {
                1.0
            } else {
                0.0
            }
        });
        let e = believed.delivery(crate::NodeId(0), crate::NodeId(1));
        assert!((e - 0.5).abs() < 0.02, "windowed mean {e} should be ≈ 0.5");
    }

    #[test]
    fn windowed_probing_is_deterministic_in_seed() {
        let truth = generate::testbed(1);
        let est = LinkEstimator {
            probes: 120,
            min_delivery: 0.05,
        };
        let probe =
            |t: &Topology, seed| est.estimate_live(t, seed, 1_000, |tx, rx, _| t.delivery(tx, rx));
        let a = probe(&truth, 9);
        let b = probe(&truth, 9);
        let c = probe(&truth, 10);
        assert_eq!(a.matrix(), b.matrix());
        assert_ne!(a.matrix(), c.matrix());
    }

    #[test]
    fn windowed_probing_hears_links_beyond_the_matrix() {
        // The live channel carries a link the static matrix lacks.
        let truth = Topology::from_matrix("bare", vec![vec![0.0, 0.9], vec![0.0, 0.0]]);
        let est = LinkEstimator {
            probes: 400,
            min_delivery: 0.05,
        };
        let believed = est.estimate_live(&truth, 1, 1_000, |_, _, _| 0.8);
        assert!(believed.delivery(crate::NodeId(1), crate::NodeId(0)) > 0.7);
    }

    #[test]
    fn candidate_probing_only_hears_candidates() {
        let truth = generate::line(2, 0.8, 0.0, 30.0);
        let est = LinkEstimator {
            probes: 500,
            min_delivery: 0.05,
        };
        let cands = vec![(NodeId(0), NodeId(1))];
        let believed = est
            .estimate_live_candidates(&truth, 3, 1_000, &cands, |tx, rx, _| truth.delivery(tx, rx));
        assert!(believed.delivery(NodeId(0), NodeId(1)) > 0.7);
        // Pairs outside the candidate set are never probed, even though
        // the callback would report them as live.
        assert_eq!(believed.delivery(NodeId(1), NodeId(0)), 0.0);
        assert_eq!(believed.delivery(NodeId(1), NodeId(2)), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one probe")]
    fn zero_probes_panics() {
        let truth = generate::motivating();
        LinkEstimator {
            probes: 0,
            min_delivery: 0.0,
        }
        .estimate(&truth, 0);
    }
}
