//! The canonical RNG stream registry.
//!
//! Every independent randomness consumer in the workspace derives its
//! ChaCha8 stream as `seed ^ <NAME>_STREAM`, where the constant lives
//! here and nowhere else. Centralizing the constants makes three
//! properties auditable at a glance — and `xtask`'s `stream_registry`
//! lint enforces them mechanically:
//!
//! 1. **uniqueness of names**: no two subsystems can claim the same
//!    stream constant;
//! 2. **uniqueness of values**: two streams with the same XOR constant
//!    would collapse into one RNG sequence, silently correlating draws
//!    that the determinism contract promises are independent;
//! 3. **registration**: a `*_STREAM` constant defined anywhere else in
//!    the workspace is a lint finding, so new streams must pass through
//!    this file (and its review) to exist.
//!
//! Consumers re-export their constant at its historical public path
//! (e.g. `scenario::TRAFFIC_STREAM`), so moving the definitions here
//! changed no values and therefore no RNG byte-stream.

// xtask: stream-registry

/// XOR'd into the run seed to give channel evolution its own ChaCha8
/// stream, so model-internal draws never perturb the engine's main
/// stream (which is what keeps static runs byte-identical to the
/// pre-channel engine). Consumed by `mesh_sim::channel`.
pub const CHANNEL_STREAM: u64 = 0xC4A2_2E1C_51A7_0DE1;

/// XOR'd into the seed of `LinkEstimator::estimate_live` so probe draws
/// get their own ChaCha8 stream: callers pass the *run* seed (the probe
/// window previews that run's channel), and without the separation the
/// probe's Bernoulli draws would be bit-identical to the run's early
/// MAC/loss draws, correlating measured beliefs with actual outcomes.
pub const PROBE_STREAM: u64 = 0x9B0B_E57A_11E5_7331;

/// XOR'd into the run seed to give workload randomness its own ChaCha8
/// stream (the same device `mesh_sim::channel` uses for loss-process
/// evolution), so traffic draws never perturb the engine's main stream.
/// Consumed by `scenario::traffic`.
pub const TRAFFIC_STREAM: u64 = 0x7AFF_1C00_5EED_F10B;

/// XOR'd into the run seed to give queue-discipline randomness (RED's
/// marking draws, CHOKe's random peek) its own ChaCha8 stream, so AQM
/// decisions never perturb the engine's main stream — which is what
/// keeps `QueueSpec::Unbounded` runs byte-identical to the pre-queue
/// engine. Consumed by `mesh_sim::queue`.
pub const QUEUE_STREAM: u64 = 0x51EE_7AB1_E0DD_90C3;

/// Stream constant decorrelating testbed-generation retries from the
/// run seed (`crate::generate::testbed`).
pub const TESTBED_ATTEMPT_STREAM: u64 = 0x9E37_79B9_7F4A_7C15;

/// Stream constant decorrelating random-mesh retries from the run seed
/// (`crate::generate::random_mesh`).
pub const MESH_ATTEMPT_STREAM: u64 = 0xD1B5_4A32_D192_ED03;

/// XOR'd into the seed of the city-scale generator's node-placement RNG
/// (`crate::generate::city_mesh`), so scatter draws stay decorrelated
/// from the per-pair link draws below and from every run-seed consumer.
pub const CITY_SCATTER_STREAM: u64 = 0xA5C3_91E4_6B2D_8F17;

/// XOR'd (together with a splitmix-mixed pair index) into the per-pair
/// link RNG of `crate::generate::city_mesh`. Seeding each unordered node
/// pair independently makes the drawn shadowing/asymmetry — and hence
/// the generated mesh — independent of the order in which the spatial
/// grid enumerates candidate neighbors.
pub const CITY_LINK_STREAM: u64 = 0x3D8E_5A01_C97B_42D9;
