//! Spatial hashing for geometric topologies.
//!
//! A [`CellGrid`] buckets node positions into square cells of a chosen
//! size so "who is within `r` meters of (x, y)?" touches only the cells
//! overlapping that disc — O(points-in-cells) instead of a scan over all
//! `n` nodes. The geometric generators use it for minimum-separation
//! checks and candidate-link enumeration; the simulator's `Medium` uses
//! it to find carrier-sense/interference-range pairs.
//!
//! Determinism contract: queries visit cells in row-major order and, in
//! each cell, points in insertion order. Callers that feed results into
//! anything RNG-bearing must therefore either insert in ascending node id
//! and tolerate cell-major order, or sort the candidate set — the
//! topology/medium builders do the latter, so neighbor iteration order is
//! always sorted-by-`NodeId` regardless of geometry.
//!
//! The grid is strictly 2D (ground-plane x/y). Floors add vertical
//! distance, which can only *grow* a 3D separation, so a 2D query with a
//! 3D radius returns a superset of the true 3D neighborhood — callers do
//! the exact distance check on the candidates. Generators that need
//! same-floor queries keep one grid per floor.

// xtask: allow(panic_path, file) -- the cells vector is sized rows*cols at construction and every cell coordinate passes through cell_of, which clamps into 0..cols-1 x 0..rows-1.

use crate::Position;

/// A uniform grid over a rectangle, bucketing point ids by cell.
///
/// Coordinates outside the covered rectangle are clamped into the border
/// cells, so the grid never loses a point — worst case a border cell is
/// overfull and queries do a few extra exact checks.
#[derive(Clone, Debug)]
#[must_use = "a cell grid does nothing until queried"]
pub struct CellGrid {
    cell: f64,
    min_x: f64,
    min_y: f64,
    cols: usize,
    rows: usize,
    /// Row-major `rows × cols` buckets of point ids, insertion-ordered.
    cells: Vec<Vec<u32>>,
}

impl CellGrid {
    /// An empty grid covering `[min_x, max_x] × [min_y, max_y]` with
    /// square cells of side `cell` (clamped to a sane minimum).
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64, cell: f64) -> Self {
        let cell = if cell.is_finite() && cell > 1e-9 {
            cell
        } else {
            1.0
        };
        let span = |lo: f64, hi: f64| {
            if hi > lo {
                ((hi - lo) / cell).floor() as usize + 1
            } else {
                1
            }
        };
        let cols = span(min_x, max_x);
        let rows = span(min_y, max_y);
        CellGrid {
            cell,
            min_x,
            min_y,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
        }
    }

    /// A grid covering the bounding box of `positions`, with every point
    /// inserted under its index (ascending, so buckets are id-sorted).
    pub fn from_positions(positions: &[Position], cell: f64) -> Self {
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for p in positions {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if positions.is_empty() {
            min_x = 0.0;
            min_y = 0.0;
            max_x = 0.0;
            max_y = 0.0;
        }
        let mut grid = CellGrid::new(min_x, min_y, max_x, max_y, cell);
        for (i, p) in positions.iter().enumerate() {
            grid.insert(i as u32, p.x, p.y);
        }
        grid
    }

    /// Side length of one cell, meters.
    #[inline]
    pub fn cell_size(&self) -> f64 {
        self.cell
    }

    /// Cell coordinates for a point, clamped into the grid.
    #[inline]
    fn cell_of(&self, x: f64, y: f64) -> (usize, usize) {
        let cx = ((x - self.min_x) / self.cell).floor();
        let cy = ((y - self.min_y) / self.cell).floor();
        let clamp = |v: f64, hi: usize| (v.max(0.0) as usize).min(hi - 1);
        (clamp(cx, self.cols), clamp(cy, self.rows))
    }

    /// Adds a point id at `(x, y)`.
    pub fn insert(&mut self, id: u32, x: f64, y: f64) {
        let (cx, cy) = self.cell_of(x, y);
        self.cells[cy * self.cols + cx].push(id);
    }

    /// Visits every id bucketed in a cell that intersects the axis-aligned
    /// square of half-width `radius` around `(x, y)` — a superset of all
    /// points within `radius` of the query point. Cells are visited in
    /// row-major order, points in insertion order; the caller applies the
    /// exact distance predicate.
    pub fn for_each_candidate(&self, x: f64, y: f64, radius: f64, mut f: impl FnMut(u32)) {
        let (cx0, cy0) = self.cell_of(x - radius, y - radius);
        let (cx1, cy1) = self.cell_of(x + radius, y + radius);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                for &id in &self.cells[cy * self.cols + cx] {
                    f(id);
                }
            }
        }
    }

    /// All candidate ids for a query disc, ascending and deduplicated
    /// (each id is bucketed once, so sorting suffices).
    pub fn candidates(&self, x: f64, y: f64, radius: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_candidate(x, y, radius, |id| out.push(id));
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn finds_all_points_within_radius() {
        let pts: Vec<Position> = (0..100)
            .map(|i| Position {
                x: (i % 10) as f64 * 7.0,
                y: (i / 10) as f64 * 7.0,
                floor: 0,
            })
            .collect();
        let grid = CellGrid::from_positions(&pts, 10.0);
        for (qi, q) in pts.iter().enumerate() {
            let cand = grid.candidates(q.x, q.y, 15.0);
            // Every point truly within the radius must be a candidate.
            for (i, p) in pts.iter().enumerate() {
                let d = ((p.x - q.x).powi(2) + (p.y - q.y).powi(2)).sqrt();
                if d <= 15.0 {
                    assert!(
                        cand.binary_search(&(i as u32)).is_ok(),
                        "query {qi} missed point {i} at distance {d:.1}"
                    );
                }
            }
        }
    }

    #[test]
    fn candidates_are_sorted_and_bounded() {
        let pts: Vec<Position> = (0..50)
            .map(|i| Position {
                x: (i as f64 * 13.7) % 100.0,
                y: (i as f64 * 29.3) % 80.0,
                floor: i % 3,
            })
            .collect();
        let grid = CellGrid::from_positions(&pts, 12.0);
        let cand = grid.candidates(50.0, 40.0, 12.0);
        assert!(cand.windows(2).all(|w| w[0] < w[1]), "sorted, deduplicated");
        // The candidate square has side 2r + 2·cell at most: nothing
        // farther than the covered cells may appear.
        for &id in &cand {
            let p = &pts[id as usize];
            assert!((p.x - 50.0).abs() <= 12.0 + 2.0 * 12.0);
            assert!((p.y - 40.0).abs() <= 12.0 + 2.0 * 12.0);
        }
    }

    #[test]
    fn out_of_bounds_queries_clamp() {
        let pts = vec![
            Position {
                x: 0.0,
                y: 0.0,
                floor: 0,
            },
            Position {
                x: 5.0,
                y: 5.0,
                floor: 0,
            },
        ];
        let grid = CellGrid::from_positions(&pts, 4.0);
        // A query far outside the box still terminates and sees the
        // border cells.
        let cand = grid.candidates(-100.0, -100.0, 150.0);
        assert_eq!(cand, vec![0, 1]);
        // The far corner clamps to the border cell too: it terminates
        // and can only ever report real point ids.
        assert!(grid.candidates(1e9, 1e9, 1.0).iter().all(|&id| id < 2));
    }

    #[test]
    fn empty_and_degenerate_extents() {
        let grid = CellGrid::from_positions(&[], 10.0);
        assert!(grid.candidates(0.0, 0.0, 5.0).is_empty());
        let one = CellGrid::from_positions(
            &[Position {
                x: 3.0,
                y: 3.0,
                floor: 0,
            }],
            10.0,
        );
        assert_eq!(one.candidates(3.0, 3.0, 1.0), vec![0]);
    }

    #[test]
    fn incremental_insertion_matches_bulk() {
        let pts: Vec<Position> = (0..20)
            .map(|i| Position {
                x: i as f64 * 3.0,
                y: (i * i % 17) as f64,
                floor: 0,
            })
            .collect();
        let bulk = CellGrid::from_positions(&pts, 8.0);
        let mut inc = CellGrid::new(0.0, 0.0, 57.0, 16.0, 8.0);
        for (i, p) in pts.iter().enumerate() {
            inc.insert(i as u32, p.x, p.y);
        }
        for q in &pts {
            assert_eq!(
                bulk.candidates(q.x, q.y, 9.0),
                inc.candidates(q.x, q.y, 9.0)
            );
        }
    }
}
