//! Generators for every topology the MORE evaluation uses.
//!
//! * [`motivating`] — the 3-node example of Fig 1-1 / §2.1.1.
//! * [`line()`] — an n-hop chain with optional lossy "shortcut" links; the
//!   4-hop variant is the spatial-reuse workload of Fig 4-4.
//! * [`diamond`] — the Fig 5-1 topology whose ETX-vs-EOTX cost gap is
//!   unbounded.
//! * [`testbed`] — a 20-node, 3-floor indoor mesh statistically matched to
//!   the paper's testbed (§4.1: link loss 0–60 %, mean ≈ 27 %, paths 1–5
//!   hops).
//! * [`random_mesh`] — arbitrary-size meshes from the same radio model.
//!
//! All generators are deterministic in their seed.

// xtask: allow(panic_path, file) -- grid and position vectors are sized from the node count computed in the same function; panicking after 512 rejected attempts is the documented contract for statistically impossible seeds.

use crate::spatial::CellGrid;
use crate::{Link, NodeId, Position, Topology};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The Fig 1-1 motivating example: src(0) → R(1) → dst(2).
///
/// §2.1.1 fixes the numbers: the two-hop path has ETX 2, the direct link
/// has delivery 0.49 (ETX 2.04).
pub fn motivating() -> Topology {
    Topology::from_matrix(
        "motivating",
        vec![
            vec![0.0, 1.0, 0.49],
            vec![0.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0],
        ],
    )
}

/// The Fig 1-1 example with symmetric links, for protocols that need a
/// reverse path (MAC ACKs, batch ACKs). Same ETX structure: two perfect
/// hops vs a 0.49 direct link.
pub fn motivating_symmetric() -> Topology {
    Topology::from_matrix(
        "motivating-sym",
        vec![
            vec![0.0, 1.0, 0.49],
            vec![1.0, 0.0, 1.0],
            vec![0.49, 1.0, 0.0],
        ],
    )
}

/// An `hops`-hop chain: node 0 is the source, node `hops` the destination.
///
/// Adjacent delivery is `p_adj`; a link that skips `s` extra hops has
/// delivery `p_adj * skip_decay^s`, cut off below 2 %. Links are symmetric.
/// Positions are laid out on a line with `spacing` meters per hop so the
/// simulator's carrier-sense range determines which hops can fire
/// concurrently (the Fig 4-4 scenario).
#[allow(clippy::needless_range_loop)] // index pairs (i,j) address a square matrix
pub fn line(hops: usize, p_adj: f64, skip_decay: f64, spacing: f64) -> Topology {
    assert!(hops >= 1, "need at least one hop");
    assert!((0.0..=1.0).contains(&p_adj));
    assert!((0.0..=1.0).contains(&skip_decay));
    let n = hops + 1;
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let span = i.abs_diff(j);
            let p = p_adj * skip_decay.powi(span as i32 - 1);
            if p >= 0.02 {
                m[i][j] = p;
            }
        }
    }
    let positions = (0..n)
        .map(|i| Position {
            x: i as f64 * spacing,
            y: 0.0,
            floor: 0,
        })
        .collect();
    Topology::from_matrix(format!("line{hops}"), m).with_positions(positions)
}

/// The Fig 5-1 "unbounded cost gap" diamond.
///
/// Nodes: `0 = src`, `1 = A`, `2 = B`, `3..3+k = C₁…C_k`, `3+k = dst`.
///
/// * src → A with probability `p`; A → dst perfectly.
/// * src → B perfectly; B → each Cᵢ with probability `p`; Cᵢ → dst
///   perfectly.
///
/// ETX ranks B with the source (ETX = 1/p + 1), so ETX-ordered forwarding
/// "will always discard B as a forwarder"; EOTX exploits the k independent
/// C-forwarders and drives the cost ratio to k as p → 0.
#[allow(clippy::needless_range_loop)] // index pairs (i,j) address a square matrix
pub fn diamond(k: usize, p: f64) -> Topology {
    assert!(k >= 1, "need at least one C node");
    assert!((0.0..=1.0).contains(&p));
    let n = k + 4; // src, A, B, C1..Ck, dst
    let src = 0;
    let a = 1;
    let b = 2;
    let dst = n - 1;
    let mut m = vec![vec![0.0; n]; n];
    m[src][a] = p;
    m[a][dst] = 1.0;
    m[src][b] = 1.0;
    for c in 3..3 + k {
        m[b][c] = p;
        m[c][dst] = 1.0;
    }
    Topology::from_matrix(format!("diamond{k}"), m)
}

/// The Fig 5-1 diamond with every link mirrored (same delivery both
/// ways), for protocols that need reverse paths (MAC ACKs, batch ACKs).
/// Forward metric structure — and hence the ETX-vs-EOTX ordering story —
/// is unchanged.
#[allow(clippy::needless_range_loop)] // index pairs (i,j) address a square matrix
pub fn diamond_symmetricized(k: usize, p: f64) -> Topology {
    let base = diamond(k, p);
    let n = base.n();
    let bm = base.matrix();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            m[i][j] = bm[i][j].max(bm[j][i]);
        }
    }
    // One collision domain: the Chapter-5 model assumes transmissions do
    // not interfere, which CSMA approximates only when everyone senses
    // everyone. Cluster the nodes well inside carrier-sense range.
    let positions = (0..n)
        .map(|i| {
            let angle = i as f64 / n as f64 * std::f64::consts::TAU;
            Position {
                x: 10.0 + 8.0 * angle.cos(),
                y: 10.0 + 8.0 * angle.sin(),
                floor: 0,
            }
        })
        .collect();
    Topology::from_matrix(format!("diamond-sym{k}"), m).with_positions(positions)
}

/// Node ids of the named diamond roles, in the order
/// `(src, a, b, cs, dst)`.
pub fn diamond_roles(k: usize) -> (NodeId, NodeId, NodeId, Vec<NodeId>, NodeId) {
    (
        NodeId(0),
        NodeId(1),
        NodeId(2),
        (3..3 + k).map(NodeId).collect(),
        NodeId(k + 3),
    )
}

/// Radio propagation model used by [`testbed`] and [`random_mesh`].
///
/// Delivery probability falls with distance along a logistic curve centred
/// on `half_distance` with slope width `spread`; per-link log-normal-ish
/// shadowing perturbs the effective distance, and floors add
/// `floor_penalty` meters each. Links with `p < min_delivery` are removed —
/// 802.11 management (beacon loss) would keep such neighbours out of the
/// routing tables anyway.
#[derive(Clone, Copy, Debug)]
pub struct RadioModel {
    /// Distance at which mean delivery is 50%, meters.
    pub half_distance: f64,
    /// Width of the logistic delivery-vs-distance slope, meters.
    pub spread: f64,
    /// Extra effective meters added per floor of separation.
    pub floor_penalty: f64,
    /// Standard deviation of the per-link shadowing term, meters.
    pub shadowing_sigma: f64,
    /// Links below this delivery probability are removed.
    pub min_delivery: f64,
    /// Ceiling on any link's delivery probability.
    pub max_delivery: f64,
}

impl Default for RadioModel {
    fn default() -> Self {
        RadioModel {
            half_distance: 19.0,
            spread: 3.5,
            floor_penalty: 11.0,
            shadowing_sigma: 5.0,
            min_delivery: 0.10,
            max_delivery: 0.98,
        }
    }
}

impl RadioModel {
    /// Mean delivery probability at effective distance `d` (no shadowing).
    pub fn delivery_at(&self, d: f64) -> f64 {
        let p = 1.0 / (1.0 + ((d - self.half_distance) / self.spread).exp());
        p.min(self.max_delivery)
    }
}

/// Approximate standard normal via the sum of 12 uniforms (Irwin–Hall);
/// plenty for shadowing noise and keeps us off `rand_distr`.
fn approx_normal<R: Rng>(rng: &mut R) -> f64 {
    (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0
}

/// Builds a delivery matrix from positions and a radio model.
pub fn matrix_from_positions(
    positions: &[Position],
    model: &RadioModel,
    rng: &mut impl Rng,
) -> Vec<Vec<f64>> {
    let n = positions.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            // Symmetric shadowing per node pair plus small per-direction
            // asymmetry: measured 802.11 links are usually roughly, but not
            // exactly, symmetric.
            let base = positions[i].distance(&positions[j], model.floor_penalty);
            let shadow = approx_normal(rng) * model.shadowing_sigma;
            let d_eff = (base + shadow).max(0.0);
            let p = model.delivery_at(d_eff);
            let asym = 1.0 + 0.05 * approx_normal(rng).clamp(-2.0, 2.0);
            let pij = (p * asym).clamp(0.0, model.max_delivery);
            let pji = (p / asym).clamp(0.0, model.max_delivery);
            // Link existence is symmetric: if either direction falls below
            // the floor, the pair is not neighbours (Roofnet's ETX prober
            // drops links whose reverse probe rate is too low — a one-way
            // link is unusable under 802.11's ACK'd unicast anyway).
            if pij >= model.min_delivery && pji >= model.min_delivery {
                m[i][j] = pij;
                m[j][i] = pji;
            }
        }
    }
    m
}

/// Scatters `n` nodes over `floors` storeys of a `width × depth` meter
/// building with a minimum pairwise separation (rejection sampling).
///
/// The same-floor separation check runs against a per-floor [`CellGrid`]
/// so each attempt costs O(points-in-nearby-cells) instead of O(placed).
/// The accept/reject decision — and therefore the RNG draw sequence and
/// the returned layout — is identical to the historical linear scan: the
/// check consumes no randomness, and the grid merely narrows which
/// already-placed points the exact distance predicate visits.
pub fn scatter_positions(
    n: usize,
    floors: i32,
    width: f64,
    depth: f64,
    min_separation: f64,
    rng: &mut impl Rng,
) -> Vec<Position> {
    let mut positions: Vec<Position> = Vec::with_capacity(n);
    let mut grids: Vec<CellGrid> = (0..floors.max(1))
        .map(|_| CellGrid::new(0.0, 0.0, width, depth, min_separation))
        .collect();
    let mut attempts = 0;
    while positions.len() < n {
        attempts += 1;
        let candidate = Position {
            x: rng.gen::<f64>() * width,
            y: rng.gen::<f64>() * depth,
            floor: (positions.len() as i32) % floors,
        };
        let grid = &mut grids[candidate.floor as usize];
        let mut ok = true;
        grid.for_each_candidate(candidate.x, candidate.y, min_separation, |id| {
            let p = &positions[id as usize];
            if p.distance(&candidate, 0.0) < min_separation {
                ok = false;
            }
        });
        if ok || attempts > 200 * n {
            grid.insert(positions.len() as u32, candidate.x, candidate.y);
            positions.push(candidate);
        }
    }
    positions
}

/// Statistics a generated testbed must satisfy to stand in for §4.1.
#[derive(Clone, Copy, Debug)]
pub struct TestbedTargets {
    /// Minimum acceptable mean link loss.
    pub mean_loss_lo: f64,
    /// Maximum acceptable mean link loss.
    pub mean_loss_hi: f64,
    /// Minimum acceptable network diameter, hops.
    pub max_hops_lo: usize,
    /// Maximum acceptable network diameter, hops.
    pub max_hops_hi: usize,
}

impl Default for TestbedTargets {
    fn default() -> Self {
        TestbedTargets {
            mean_loss_lo: 0.30,
            mean_loss_hi: 0.60,
            max_hops_lo: 4,
            max_hops_hi: 7,
        }
    }
}

pub use crate::streams::{
    CITY_LINK_STREAM, CITY_SCATTER_STREAM, MESH_ATTEMPT_STREAM, TESTBED_ATTEMPT_STREAM,
};

/// A 20-node, 3-floor indoor testbed statistically matched to §4.1.
///
/// Deterministic in `seed`; internally retries derived seeds until the
/// generated mesh is connected, its mean link loss lands near the paper's
/// 27 %, and shortest paths span 1–5+ hops.
pub fn testbed(seed: u64) -> Topology {
    testbed_sized(20, seed)
}

/// Same generator for an arbitrary node count (used in scaling tests).
pub fn testbed_sized(n: usize, seed: u64) -> Topology {
    let targets = TestbedTargets::default();
    let model = RadioModel::default();
    for attempt in 0..512u64 {
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ attempt.wrapping_mul(TESTBED_ATTEMPT_STREAM));
        let positions = scatter_positions(n, 3, 56.0, 36.0, 6.0, &mut rng);
        let m = matrix_from_positions(&positions, &model, &mut rng);
        let topo =
            Topology::from_matrix(format!("testbed{n}-s{seed}"), m).with_positions(positions);
        if !topo.is_connected() {
            continue;
        }
        let loss = topo.mean_link_loss();
        if loss < targets.mean_loss_lo || loss > targets.mean_loss_hi {
            continue;
        }
        let max_hops = topo
            .nodes()
            .flat_map(|a| topo.hops_from(a).into_iter().flatten())
            .max()
            .unwrap_or(0);
        if max_hops < targets.max_hops_lo || max_hops > targets.max_hops_hi {
            continue;
        }
        return topo;
    }
    panic!("testbed generation failed to satisfy targets after 512 attempts (seed {seed})");
}

/// A random `n`-node mesh over one floor of `width × depth` meters.
pub fn random_mesh(n: usize, width: f64, depth: f64, seed: u64) -> Topology {
    let model = RadioModel::default();
    for attempt in 0..512u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ attempt.wrapping_mul(MESH_ATTEMPT_STREAM));
        let positions = scatter_positions(n, 1, width, depth, 4.0, &mut rng);
        let m = matrix_from_positions(&positions, &model, &mut rng);
        let topo = Topology::from_matrix(format!("mesh{n}-s{seed}"), m).with_positions(positions);
        if topo.is_connected() {
            return topo;
        }
    }
    panic!("random mesh generation failed to connect after 512 attempts (seed {seed})");
}

/// splitmix64 finalizer: decorrelates consecutive pair indices into
/// well-spread RNG seeds.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed for the unordered pair `(i, j)`, `i < j`: a pure function of the
/// city seed and the pair, so link draws do not depend on the order in
/// which the spatial grid enumerates candidates.
fn city_pair_seed(seed: u64, i: usize, j: usize) -> u64 {
    seed ^ CITY_LINK_STREAM ^ mix64(((i as u64) << 32) | j as u64)
}

/// Largest ground distance at which any shadowing/asymmetry draw can
/// still produce a link under `model`: beyond it, even the luckiest
/// Irwin–Hall shadow (−6σ) and asymmetry (×1.1) leave both directions
/// under `min_delivery`.
fn max_link_distance(model: &RadioModel) -> f64 {
    // Logistic inverse at `min_delivery / 1.1` — conservatively below
    // the true weakest passable probability (asymmetry can only shrink
    // the weaker direction, so `min_delivery` itself would suffice) —
    // plus the maximum favorable shadow.
    let q = model.min_delivery / 1.1;
    let d_eff_max = model.half_distance + model.spread * (1.0 / q - 1.0).ln();
    d_eff_max + 6.0 * model.shadowing_sigma
}

/// A city-scale single-floor mesh: `n` nodes at ~1250 m² per node, links
/// drawn from the default [`RadioModel`] with *per-pair* RNG streams.
///
/// Unlike [`random_mesh`], this generator never materializes an `n × n`
/// matrix and never retries for connectivity — sparse city meshes
/// legitimately contain dead spots, and at 10k+ nodes a connectivity
/// requirement would reject almost every layout. Candidate pairs come
/// from a [`CellGrid`] query bounded by the model's maximum plausible
/// link distance; each unordered pair draws its shadowing and asymmetry
/// from its own ChaCha8 stream (the run seed xor `CITY_LINK_STREAM`
/// mixed with the pair index), so the result is a pure function of
/// `(n, seed)` regardless of grid enumeration order.
pub fn city_mesh(n: usize, seed: u64) -> Topology {
    assert!(n >= 1, "need at least one node");
    let model = RadioModel::default();
    let side = ((n as f64) * 1250.0).sqrt();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ CITY_SCATTER_STREAM);
    let positions = scatter_positions(n, 1, side, side, 4.0, &mut rng);
    let r_max = max_link_distance(&model);
    let grid = CellGrid::from_positions(&positions, r_max);
    let mut links = Vec::new();
    for i in 0..n {
        let pi = positions[i];
        grid.for_each_candidate(pi.x, pi.y, r_max, |jj| {
            let j = jj as usize;
            if j <= i {
                return;
            }
            let base = pi.distance(&positions[j], model.floor_penalty);
            if base > r_max {
                return;
            }
            // xtask: allow(rng_stream) -- city_pair_seed is the run seed ^ CITY_LINK_STREAM mixed with the unordered pair index (a per-pair stream; see streams.rs).
            let mut pair_rng = ChaCha8Rng::seed_from_u64(city_pair_seed(seed, i, j));
            let shadow = approx_normal(&mut pair_rng) * model.shadowing_sigma;
            let d_eff = (base + shadow).max(0.0);
            let p = model.delivery_at(d_eff);
            let asym = 1.0 + 0.05 * approx_normal(&mut pair_rng).clamp(-2.0, 2.0);
            let pij = (p * asym).clamp(0.0, model.max_delivery);
            let pji = (p / asym).clamp(0.0, model.max_delivery);
            if pij >= model.min_delivery && pji >= model.min_delivery {
                links.push(Link {
                    from: NodeId(i),
                    to: NodeId(j),
                    delivery: pij,
                });
                links.push(Link {
                    from: NodeId(j),
                    to: NodeId(i),
                    delivery: pji,
                });
            }
        });
    }
    Topology::from_links(format!("city{n}-s{seed}"), n, links).with_positions(positions)
}

/// A `w × h` grid with adjacent delivery `p_adj` and diagonal delivery
/// `p_diag`, `spacing` meters apart. Useful for regular-mesh experiments.
pub fn grid(w: usize, h: usize, p_adj: f64, p_diag: f64, spacing: f64) -> Topology {
    assert!(w >= 1 && h >= 1);
    let n = w * h;
    let idx = |x: usize, y: usize| y * w + x;
    let mut m = vec![vec![0.0; n]; n];
    for y in 0..h {
        for x in 0..w {
            let i = idx(x, y);
            let mut put = |j: usize, p: f64| {
                m[i][j] = p;
                m[j][i] = p;
            };
            if x + 1 < w {
                put(idx(x + 1, y), p_adj);
            }
            if y + 1 < h {
                put(idx(x, y + 1), p_adj);
            }
            if p_diag > 0.0 && x + 1 < w && y + 1 < h {
                put(idx(x + 1, y + 1), p_diag);
            }
            if p_diag > 0.0 && x >= 1 && y + 1 < h {
                put(idx(x - 1, y + 1), p_diag);
            }
        }
    }
    let positions = (0..n)
        .map(|i| Position {
            x: (i % w) as f64 * spacing,
            y: (i / w) as f64 * spacing,
            floor: 0,
        })
        .collect();
    Topology::from_matrix(format!("grid{w}x{h}"), m).with_positions(positions)
}

#[cfg(test)]
mod test {
    use super::*;

    /// Diagnostic: print what the generator produces, to tune the radio
    /// model. `cargo test -p mesh-topology testbed_diagnostics -- --ignored --nocapture`
    #[test]
    #[ignore]
    fn testbed_diagnostics() {
        let model = RadioModel::default();
        for seed in 0..8u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let positions = scatter_positions(20, 3, 56.0, 36.0, 6.0, &mut rng);
            let m = matrix_from_positions(&positions, &model, &mut rng);
            let topo = Topology::from_matrix("diag", m).with_positions(positions);
            let connected = topo.is_connected();
            let loss = topo.mean_link_loss();
            let max_hops = topo
                .nodes()
                .flat_map(|a| topo.nodes().map(move |b| (a, b)))
                .filter(|(a, b)| a != b)
                .filter_map(|(a, b)| topo.hop_count(a, b))
                .max()
                .unwrap_or(0);
            println!(
                "seed {seed}: connected={connected} links={} mean_loss={loss:.3} max_hops={max_hops}",
                topo.links().count()
            );
        }
    }

    #[test]
    fn motivating_matches_the_paper_numbers() {
        let t = motivating();
        assert_eq!(t.n(), 3);
        assert_eq!(t.delivery(NodeId(0), NodeId(1)), 1.0);
        assert_eq!(t.delivery(NodeId(1), NodeId(2)), 1.0);
        assert_eq!(t.delivery(NodeId(0), NodeId(2)), 0.49);
    }

    #[test]
    fn line_shape() {
        let t = line(4, 0.8, 0.25, 30.0);
        assert_eq!(t.n(), 5);
        assert_eq!(t.delivery(NodeId(0), NodeId(1)), 0.8);
        assert_eq!(t.delivery(NodeId(1), NodeId(0)), 0.8);
        // Skip-1 link: 0.8 * 0.25 = 0.2.
        assert!((t.delivery(NodeId(0), NodeId(2)) - 0.2).abs() < 1e-12);
        // Skip-3: 0.8 * 0.25^3 = 0.0125 < 2% cutoff -> no link.
        assert_eq!(t.delivery(NodeId(0), NodeId(4)), 0.0);
        assert_eq!(t.positions().unwrap()[4].x, 120.0);
    }

    #[test]
    fn diamond_structure() {
        let k = 5;
        let t = diamond(k, 0.1);
        let (src, a, b, cs, dst) = diamond_roles(k);
        assert_eq!(t.n(), k + 4);
        assert_eq!(t.delivery(src, a), 0.1);
        assert_eq!(t.delivery(a, dst), 1.0);
        assert_eq!(t.delivery(src, b), 1.0);
        for c in &cs {
            assert_eq!(t.delivery(b, *c), 0.1);
            assert_eq!(t.delivery(*c, dst), 1.0);
        }
        // No reverse or stray links.
        assert_eq!(t.delivery(dst, a), 0.0);
        assert_eq!(t.delivery(a, b), 0.0);
    }

    #[test]
    fn diamond_symmetricized_mirrors_links() {
        let t = diamond_symmetricized(4, 0.2);
        let (src, a, _b, _cs, dst) = diamond_roles(4);
        assert_eq!(t.delivery(src, a), 0.2);
        assert_eq!(t.delivery(a, src), 0.2);
        assert_eq!(t.delivery(dst, a), 1.0);
        assert!(t.is_connected());
    }

    #[test]
    fn testbed_statistics_match_the_paper() {
        let t = testbed(7);
        assert_eq!(t.n(), 20);
        assert!(t.is_connected());
        let loss = t.mean_link_loss();
        assert!(
            (0.30..=0.60).contains(&loss),
            "mean link loss {loss} outside band"
        );
        // Loss rates of individual links span a wide range (paper: 0-60%).
        let losses: Vec<f64> = t.links().map(|l| 1.0 - l.delivery).collect();
        let lo = losses.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = losses.iter().cloned().fold(0.0, f64::max);
        assert!(lo < 0.15, "even the best link is lossy: {lo}");
        assert!(hi > 0.5, "no challenged links at all: {hi}");
        // Paths reach 4+ hops somewhere.
        let max_hops = t
            .nodes()
            .flat_map(|a| t.nodes().map(move |b| (a, b)))
            .filter(|(a, b)| a != b)
            .filter_map(|(a, b)| t.hop_count(a, b))
            .max()
            .unwrap();
        assert!((4..=7).contains(&max_hops), "max hops {max_hops}");
    }

    #[test]
    fn testbed_is_deterministic_in_seed() {
        let a = testbed(3);
        let b = testbed(3);
        assert_eq!(a.matrix(), b.matrix());
        let c = testbed(4);
        assert_ne!(a.matrix(), c.matrix());
    }

    #[test]
    fn random_mesh_connected() {
        for seed in 0..3 {
            let t = random_mesh(12, 80.0, 50.0, seed);
            assert!(t.is_connected());
            assert_eq!(t.n(), 12);
        }
    }

    #[test]
    fn grid_shape() {
        let t = grid(3, 2, 0.9, 0.4, 20.0);
        assert_eq!(t.n(), 6);
        assert_eq!(t.delivery(NodeId(0), NodeId(1)), 0.9);
        assert_eq!(t.delivery(NodeId(0), NodeId(3)), 0.9);
        assert_eq!(t.delivery(NodeId(0), NodeId(4)), 0.4);
        assert_eq!(t.delivery(NodeId(0), NodeId(5)), 0.0);
        assert!(t.is_connected());
    }

    #[test]
    fn city_mesh_deterministic_and_sparse() {
        let a = city_mesh(200, 9);
        let b = city_mesh(200, 9);
        assert_eq!(a.matrix(), b.matrix());
        assert_ne!(a.matrix(), city_mesh(200, 10).matrix());
        assert_eq!(a.n(), 200);
        assert!(a.positions().is_some());
        // ~1250 m²/node with a ~57 m link radius keeps degree bounded:
        // the link set must be far below the dense n² ceiling.
        assert!(
            a.link_count() < 40 * a.n(),
            "city mesh is not sparse: {} links",
            a.link_count()
        );
        assert!(a.link_count() > 0, "city mesh has no links at all");
    }

    #[test]
    fn city_mesh_matches_all_pairs_reference() {
        // The grid only narrows which pairs are *examined*; per-pair RNG
        // seeding makes the outcome identical to brute-force enumeration.
        let n = 60;
        let seed = 4;
        let t = city_mesh(n, seed);
        let model = RadioModel::default();
        let positions = t.positions().unwrap();
        let r_max = max_link_distance(&model);
        for i in 0..n {
            for j in (i + 1)..n {
                let base = positions[i].distance(&positions[j], model.floor_penalty);
                let (mut pij, mut pji) = (0.0, 0.0);
                if base <= r_max {
                    let mut rng = ChaCha8Rng::seed_from_u64(city_pair_seed(seed, i, j));
                    let shadow = approx_normal(&mut rng) * model.shadowing_sigma;
                    let p = model.delivery_at((base + shadow).max(0.0));
                    let asym = 1.0 + 0.05 * approx_normal(&mut rng).clamp(-2.0, 2.0);
                    let a = (p * asym).clamp(0.0, model.max_delivery);
                    let b = (p / asym).clamp(0.0, model.max_delivery);
                    if a >= model.min_delivery && b >= model.min_delivery {
                        (pij, pji) = (a, b);
                    }
                }
                assert_eq!(t.delivery(NodeId(i), NodeId(j)), pij, "({i},{j})");
                assert_eq!(t.delivery(NodeId(j), NodeId(i)), pji, "({j},{i})");
            }
        }
    }

    #[test]
    fn beyond_max_link_distance_no_draw_can_link() {
        let model = RadioModel::default();
        let d = max_link_distance(&model);
        // Even with the most favorable possible shadow (−6σ) the base
        // probability is already below the floor, and asymmetry can only
        // shrink the weaker direction (min(p·a, p/a) ≤ p), so no draw at
        // distance ≥ d can produce a link.
        let p = model.delivery_at((d - 6.0 * model.shadowing_sigma).max(0.0));
        assert!(p < model.min_delivery);
    }

    #[test]
    fn radio_model_monotone_in_distance() {
        let m = RadioModel::default();
        let mut prev = 1.0;
        for d in 0..80 {
            let p = m.delivery_at(d as f64);
            assert!(p <= prev + 1e-12, "delivery not monotone at {d}");
            prev = p;
        }
        assert!(m.delivery_at(0.0) > 0.9);
        assert!(m.delivery_at(70.0) < 0.05);
    }
}
