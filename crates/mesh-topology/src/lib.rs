//! Wireless mesh topologies for the MORE reproduction.
//!
//! A [`Topology`] is the network model of thesis §5.3.1: broadcast-capable
//! nodes and, for every ordered pair `(i, j)`, the *marginal delivery
//! probability* `p_ij` that a transmission by `i` is received by `j`.
//! Receptions at different nodes are independent given the transmitter —
//! the loss-independence assumption the thesis adopts from prior
//! measurement studies.
//!
//! The link set is stored sparsely: CSR (compressed sparse row) adjacency
//! grouped by transmitter *and* by receiver, each row sorted by neighbor
//! id, so city-scale meshes (10k+ nodes, bounded degree) cost O(n + E)
//! memory instead of the O(n²) a dense matrix would. Dense matrices
//! survive as compatibility constructors/views ([`Topology::from_matrix`],
//! [`Topology::matrix`]).
//!
//! Nodes may carry physical [`Position`]s (used by the testbed generator,
//! the simulator's carrier-sense/interference ranges, and the Fig 4-1 map);
//! matrix-only topologies (e.g. the Fig 5-1 diamond) work without them.
//!
//! Generators for every topology the paper uses live in [`generate`]; the
//! probing-based link estimator that stands in for Roofnet's ETX
//! measurement module is in [`estimator`]; the spatial hash the geometric
//! generators use to find candidate neighbors in O(cell) is in [`spatial`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

// xtask: allow(panic_path, file) -- ascii-art grid cells are bounded by the extent computed from the same node positions; CSR rows are sized to the node count at construction.

pub mod estimator;
pub mod generate;
pub mod json;
pub mod spatial;
pub mod streams;

use std::fmt;

/// Index of a node in a topology. Dense, 0-based.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// Physical position in meters; `floor` is the building storey.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Position {
    /// East–west coordinate, meters.
    pub x: f64,
    /// North–south coordinate, meters.
    pub y: f64,
    /// Building storey the node sits on.
    pub floor: i32,
}

impl Position {
    /// Euclidean distance in the floor plane plus a per-floor vertical
    /// separation of `floor_height` meters.
    pub fn distance(&self, other: &Position, floor_height: f64) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = (self.floor - other.floor) as f64 * floor_height;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

/// A directed wireless link with its delivery probability.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Link {
    /// Transmitting endpoint.
    pub from: NodeId,
    /// Receiving endpoint.
    pub to: NodeId,
    /// Marginal probability that a frame from `from` is decoded by `to`.
    pub delivery: f64,
}

/// A lossy wireless mesh: `n` nodes and a sparse directed link set.
///
/// Stored as two CSR adjacency views — out-links grouped by transmitter
/// and in-links grouped by receiver — with neighbor ids ascending within
/// each row. [`Topology::delivery`] is a binary search in the out-row;
/// [`Topology::neighbors_out`]/[`Topology::neighbors_in`] iterate rows in
/// sorted-by-`NodeId` order, which keeps every consumer's RNG draw order
/// independent of node positions or construction order.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Human-readable label ("testbed", "line4", …).
    pub name: String,
    /// Node count.
    n: usize,
    /// CSR row offsets into `out_nbr`/`out_p`; length `n + 1`.
    out_start: Vec<u32>,
    /// Receiver ids grouped by transmitter, ascending within each row.
    out_nbr: Vec<u32>,
    /// Delivery probabilities parallel to `out_nbr`.
    out_p: Vec<f64>,
    /// CSR row offsets into `in_nbr`/`in_p`; length `n + 1`.
    in_start: Vec<u32>,
    /// Transmitter ids grouped by receiver, ascending within each row.
    in_nbr: Vec<u32>,
    /// Delivery probabilities parallel to `in_nbr`.
    in_p: Vec<f64>,
    /// Optional physical layout, parallel to node indices.
    positions: Option<Vec<Position>>,
}

/// First invalid link in `links` for an `n`-node mesh, as a message.
fn link_error(n: usize, links: &[Link]) -> Option<String> {
    for l in links {
        if l.from.0 >= n || l.to.0 >= n {
            return Some(format!(
                "link {} -> {} out of range for n = {n}",
                l.from, l.to
            ));
        }
        if l.from == l.to {
            return Some(format!("self-loop at {}", l.from));
        }
        if !(l.delivery > 0.0 && l.delivery <= 1.0) {
            return Some(format!(
                "link {} -> {} delivery {} outside (0,1]",
                l.from, l.to, l.delivery
            ));
        }
    }
    None
}

/// First duplicated ordered pair in `(from, to)`-sorted `links`.
fn dup_error(sorted: &[Link]) -> Option<String> {
    sorted.windows(2).find_map(|w| {
        ((w[0].from, w[0].to) == (w[1].from, w[1].to))
            .then(|| format!("duplicate link {} -> {}", w[0].from, w[0].to))
    })
}

impl Topology {
    /// Builds a topology from a dense delivery matrix (compatibility
    /// constructor; internally converts to CSR).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square, probabilities fall outside
    /// `[0, 1]`, or a diagonal entry is non-zero.
    pub fn from_matrix(name: impl Into<String>, delivery: Vec<Vec<f64>>) -> Self {
        let n = delivery.len();
        let mut links = Vec::new();
        for (i, row) in delivery.iter().enumerate() {
            assert_eq!(row.len(), n, "delivery matrix is not square");
            for (j, &p) in row.iter().enumerate() {
                assert!(
                    (0.0..=1.0).contains(&p),
                    "delivery[{i}][{j}] = {p} outside [0,1]"
                );
                if i == j {
                    assert_eq!(p, 0.0, "diagonal delivery[{i}][{i}] must be 0");
                }
                if p > 0.0 {
                    links.push(Link {
                        from: NodeId(i),
                        to: NodeId(j),
                        delivery: p,
                    });
                }
            }
        }
        // Row-major matrix order is already CSR order.
        Self::from_sorted_links(name.into(), n, links)
    }

    /// Builds a topology directly from a sparse link list (any order).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, a delivery probability is
    /// outside `(0, 1]`, a link is a self-loop, or the same ordered pair
    /// appears twice.
    pub fn from_links(name: impl Into<String>, n: usize, mut links: Vec<Link>) -> Self {
        if let Some(e) = link_error(n, &links) {
            panic!("{e}");
        }
        links.sort_by_key(|l| (l.from.0, l.to.0));
        if let Some(e) = dup_error(&links) {
            panic!("{e}");
        }
        Self::from_sorted_links(name.into(), n, links)
    }

    /// CSR assembly from links already sorted by `(from, to)`.
    fn from_sorted_links(name: String, n: usize, links: Vec<Link>) -> Self {
        assert!(n < u32::MAX as usize, "node count exceeds u32 index space");
        let m = links.len();
        let mut out_start = vec![0u32; n + 1];
        let mut in_start = vec![0u32; n + 1];
        for l in &links {
            out_start[l.from.0 + 1] += 1;
            in_start[l.to.0 + 1] += 1;
        }
        for i in 0..n {
            out_start[i + 1] += out_start[i];
            in_start[i + 1] += in_start[i];
        }
        let mut out_nbr = Vec::with_capacity(m);
        let mut out_p = Vec::with_capacity(m);
        let mut in_nbr = vec![0u32; m];
        let mut in_p = vec![0.0f64; m];
        let mut in_fill: Vec<u32> = in_start[..n].to_vec();
        for l in &links {
            out_nbr.push(l.to.0 as u32);
            out_p.push(l.delivery);
            // Visiting links in ascending `from` fills every in-row in
            // ascending source order, so both views end up sorted.
            let slot = in_fill[l.to.0] as usize;
            in_nbr[slot] = l.from.0 as u32;
            in_p[slot] = l.delivery;
            in_fill[l.to.0] += 1;
        }
        Topology {
            name,
            n,
            out_start,
            out_nbr,
            out_p,
            in_start,
            in_nbr,
            in_p,
            positions: None,
        }
    }

    /// Attaches physical positions (must match the node count).
    pub fn with_positions(mut self, positions: Vec<Position>) -> Self {
        assert_eq!(positions.len(), self.n(), "positions length mismatch");
        self.positions = Some(positions);
        self
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of directed links with non-zero delivery probability.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.out_nbr.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n).map(NodeId)
    }

    /// Delivery probability `p_ij`; zero when no link exists.
    #[inline]
    pub fn delivery(&self, i: NodeId, j: NodeId) -> f64 {
        debug_assert!(j.0 < self.n, "receiver {j} out of range");
        let s = self.out_start[i.0] as usize;
        let e = self.out_start[i.0 + 1] as usize;
        match self.out_nbr[s..e].binary_search(&(j.0 as u32)) {
            Ok(k) => self.out_p[s + k],
            Err(_) => 0.0,
        }
    }

    /// Loss probability `ε_ij = 1 − p_ij`.
    #[inline]
    pub fn loss(&self, i: NodeId, j: NodeId) -> f64 {
        1.0 - self.delivery(i, j)
    }

    /// The delivery matrix, densified from the CSR rows.
    ///
    /// Compatibility view: allocates `n × n` floats every call, so prefer
    /// [`Topology::neighbors_out`] / [`Topology::delivery`] at scale.
    #[must_use = "densifying allocates an n × n matrix"]
    pub fn matrix(&self) -> Vec<Vec<f64>> {
        let mut m = vec![vec![0.0; self.n]; self.n];
        for l in self.links() {
            m[l.from.0][l.to.0] = l.delivery;
        }
        m
    }

    /// Physical positions, if the topology has them.
    pub fn positions(&self) -> Option<&[Position]> {
        self.positions.as_deref()
    }

    /// Out-neighbors of `i`: nodes with `p_ij > 0`, ascending by id.
    pub fn neighbors(&self, i: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let s = self.out_start[i.0] as usize;
        let e = self.out_start[i.0 + 1] as usize;
        self.out_nbr[s..e].iter().map(|&j| NodeId(j as usize))
    }

    /// Out-neighbors of `i` with delivery probabilities, ascending by id.
    pub fn neighbors_out(&self, i: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let s = self.out_start[i.0] as usize;
        let e = self.out_start[i.0 + 1] as usize;
        self.out_nbr[s..e]
            .iter()
            .zip(&self.out_p[s..e])
            .map(|(&j, &p)| (NodeId(j as usize), p))
    }

    /// In-neighbors of `j` (nodes whose transmissions `j` can hear) with
    /// delivery probabilities, ascending by id.
    pub fn neighbors_in(&self, j: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let s = self.in_start[j.0] as usize;
        let e = self.in_start[j.0 + 1] as usize;
        self.in_nbr[s..e]
            .iter()
            .zip(&self.in_p[s..e])
            .map(|(&i, &p)| (NodeId(i as usize), p))
    }

    /// Every directed link with non-zero delivery probability, in
    /// transmitter-major, receiver-ascending order.
    pub fn links(&self) -> impl Iterator<Item = Link> + '_ {
        (0..self.n).flat_map(move |i| {
            let s = self.out_start[i] as usize;
            let e = self.out_start[i + 1] as usize;
            (s..e).map(move |k| Link {
                from: NodeId(i),
                to: NodeId(self.out_nbr[k] as usize),
                delivery: self.out_p[k],
            })
        })
    }

    /// Mean loss rate over all existing links (both directions counted).
    pub fn mean_link_loss(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for l in self.links() {
            total += 1.0 - l.delivery;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Minimum hop count from `src` to `dst` (BFS over links with `p > 0`),
    /// or `None` if unreachable.
    pub fn hop_count(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        if src == dst {
            return Some(0);
        }
        let n = self.n();
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[src.0] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if dist[v.0] == usize::MAX {
                    dist[v.0] = dist[u.0] + 1;
                    if v == dst {
                        return Some(dist[v.0]);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// BFS hop distances from `src` to every node (`None` = unreachable).
    ///
    /// One call replaces `n` [`Topology::hop_count`] probes when a whole
    /// row of distances is needed (connectivity checks, reachable-pair
    /// enumeration).
    pub fn hops_from(&self, src: NodeId) -> Vec<Option<usize>> {
        let mut dist = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        dist[src.0] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if dist[v.0] == usize::MAX {
                    dist[v.0] = dist[u.0] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist.into_iter()
            .map(|d| (d != usize::MAX).then_some(d))
            .collect()
    }

    /// True when every node can reach every other node over `p > 0` links.
    ///
    /// Strong connectivity via two BFS passes — everyone reachable *from*
    /// node 0 over out-links and everyone able to *reach* node 0 over
    /// in-links — rather than `n²` pairwise searches.
    pub fn is_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        self.bfs_covers_all(true) && self.bfs_covers_all(false)
    }

    /// BFS from node 0 along out-links (`forward`) or in-links; true when
    /// it visits every node.
    fn bfs_covers_all(&self, forward: bool) -> bool {
        let mut seen = vec![false; self.n];
        let mut queue = std::collections::VecDeque::new();
        seen[0] = true;
        queue.push_back(NodeId(0));
        let mut visited = 1usize;
        while let Some(u) = queue.pop_front() {
            let (start, nbr) = if forward {
                (&self.out_start, &self.out_nbr)
            } else {
                (&self.in_start, &self.in_nbr)
            };
            for &v in &nbr[start[u.0] as usize..start[u.0 + 1] as usize] {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    visited += 1;
                    queue.push_back(NodeId(v as usize));
                }
            }
        }
        visited == self.n
    }

    /// Serializes to pretty JSON in the dense `delivery`-matrix form
    /// (hand-rolled; see [`json`]). Byte-identical to the output of the
    /// historical dense-matrix implementation.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", json::escape(&self.name)));
        out.push_str("  \"delivery\": [\n");
        let mut row = vec![0.0f64; self.n];
        for i in 0..self.n {
            for (j, p) in self.neighbors_out(NodeId(i)) {
                row[j.0] = p;
            }
            let cells: Vec<String> = row.iter().map(|p| format_f64(*p)).collect();
            out.push_str(&format!("    [{}]", cells.join(", ")));
            out.push_str(if i + 1 < self.n { ",\n" } else { "\n" });
            for (j, _) in self.neighbors_out(NodeId(i)) {
                row[j.0] = 0.0;
            }
        }
        out.push_str("  ],\n");
        self.push_positions_json(&mut out);
        out.push('}');
        out
    }

    /// Serializes to the sparse `links`-array JSON form: `{"name", "n",
    /// "links": [{"from", "to", "p"}, …], "positions"}`. Reading
    /// auto-detects either form ([`Topology::from_json`]); this one stays
    /// O(E) on disk for city-scale meshes.
    pub fn to_json_sparse(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", json::escape(&self.name)));
        out.push_str(&format!("  \"n\": {},\n", self.n));
        out.push_str("  \"links\": [\n");
        let m = self.out_nbr.len();
        for (k, l) in self.links().enumerate() {
            out.push_str(&format!(
                "    {{\"from\": {}, \"to\": {}, \"p\": {}}}",
                l.from.0,
                l.to.0,
                format_f64(l.delivery)
            ));
            out.push_str(if k + 1 < m { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        self.push_positions_json(&mut out);
        out.push('}');
        out
    }

    /// The shared `"positions"` tail of both JSON forms.
    fn push_positions_json(&self, out: &mut String) {
        match &self.positions {
            None => out.push_str("  \"positions\": null\n"),
            Some(pos) => {
                out.push_str("  \"positions\": [\n");
                for (i, p) in pos.iter().enumerate() {
                    out.push_str(&format!(
                        "    {{\"x\": {}, \"y\": {}, \"floor\": {}}}",
                        format_f64(p.x),
                        format_f64(p.y),
                        p.floor
                    ));
                    out.push_str(if i + 1 < pos.len() { ",\n" } else { "\n" });
                }
                out.push_str("  ]\n");
            }
        }
    }

    /// Deserializes from JSON produced by [`Topology::to_json`] (dense
    /// `delivery` matrix) or [`Topology::to_json_sparse`] (`links` array);
    /// the form is auto-detected by which key is present.
    ///
    /// Validates as the constructors do, but reports malformed input as a
    /// [`json::JsonError`] instead of panicking.
    pub fn from_json(s: &str) -> Result<Self, json::JsonError> {
        let bad = |msg: &str| json::JsonError {
            offset: 0,
            message: msg.to_string(),
        };
        let v = json::parse(s)?;
        let name = v
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| bad("missing \"name\""))?
            .to_string();
        let mut topo = if let Some(links_v) = v.get("links") {
            let n_f = v
                .get("n")
                .and_then(|x| x.as_f64())
                .ok_or_else(|| bad("sparse form missing \"n\""))?;
            if n_f < 0.0 || n_f.fract() != 0.0 {
                return Err(bad("\"n\" is not a non-negative integer"));
            }
            let n = n_f as usize;
            let mut links: Vec<Link> = links_v
                .as_arr()
                .ok_or_else(|| bad("\"links\" is not an array"))?
                .iter()
                .map(|l| {
                    let num = |key: &str| {
                        l.get(key)
                            .and_then(|x| x.as_f64())
                            .ok_or_else(|| bad("link missing \"from\"/\"to\"/\"p\""))
                    };
                    let idx = |key: &str| {
                        let v = num(key)?;
                        if v < 0.0 || v.fract() != 0.0 {
                            return Err(bad("link endpoint is not a non-negative integer"));
                        }
                        Ok(v as usize)
                    };
                    Ok(Link {
                        from: NodeId(idx("from")?),
                        to: NodeId(idx("to")?),
                        delivery: num("p")?,
                    })
                })
                .collect::<Result<_, json::JsonError>>()?;
            if let Some(e) = link_error(n, &links) {
                return Err(bad(&e));
            }
            links.sort_by_key(|l| (l.from.0, l.to.0));
            if let Some(e) = dup_error(&links) {
                return Err(bad(&e));
            }
            Topology::from_sorted_links(name, n, links)
        } else {
            let delivery: Vec<Vec<f64>> = v
                .get("delivery")
                .and_then(|d| d.as_arr())
                .ok_or_else(|| bad("missing \"delivery\""))?
                .iter()
                .map(|row| {
                    row.as_arr()
                        .ok_or_else(|| bad("delivery row is not an array"))?
                        .iter()
                        .map(|c| {
                            c.as_f64()
                                .ok_or_else(|| bad("delivery cell is not a number"))
                        })
                        .collect()
                })
                .collect::<Result<_, _>>()?;
            let n = delivery.len();
            for (i, row) in delivery.iter().enumerate() {
                if row.len() != n {
                    return Err(bad("delivery matrix is not square"));
                }
                for (j, &p) in row.iter().enumerate() {
                    if !(0.0..=1.0).contains(&p) {
                        return Err(bad("delivery probability outside [0,1]"));
                    }
                    if i == j && p != 0.0 {
                        return Err(bad("diagonal delivery must be 0"));
                    }
                }
            }
            Topology::from_matrix(name, delivery)
        };
        match v.get("positions") {
            None | Some(json::Value::Null) => {}
            Some(p) => {
                let positions: Vec<Position> = p
                    .as_arr()
                    .ok_or_else(|| bad("\"positions\" is not an array"))?
                    .iter()
                    .map(|q| {
                        let coord = |key: &str| {
                            q.get(key)
                                .and_then(|x| x.as_f64())
                                .ok_or_else(|| bad("position missing coordinate"))
                        };
                        Ok(Position {
                            x: coord("x")?,
                            y: coord("y")?,
                            floor: coord("floor")? as i32,
                        })
                    })
                    .collect::<Result<_, json::JsonError>>()?;
                if positions.len() != topo.n() {
                    return Err(bad("positions length mismatch"));
                }
                topo = topo.with_positions(positions);
            }
        }
        Ok(topo)
    }

    /// A coarse ASCII floor map (Fig 4-1 style); one grid per floor.
    pub fn ascii_map(&self, cols: usize, rows: usize) -> String {
        let Some(pos) = &self.positions else {
            return String::from("(no positions)\n");
        };
        let (min_x, max_x) = min_max(pos.iter().map(|p| p.x));
        let (min_y, max_y) = min_max(pos.iter().map(|p| p.y));
        let floors: std::collections::BTreeSet<i32> = pos.iter().map(|p| p.floor).collect();
        let mut out = String::new();
        for floor in floors {
            out.push_str(&format!("floor {floor}:\n"));
            let mut grid = vec![vec![b'.'; cols]; rows];
            for (i, p) in pos.iter().enumerate() {
                if p.floor != floor {
                    continue;
                }
                let cx = scale(p.x, min_x, max_x, cols);
                let cy = scale(p.y, min_y, max_y, rows);
                let label = if i < 10 {
                    b'0' + i as u8
                } else {
                    b'a' + (i - 10) as u8
                };
                grid[cy][cx] = label;
            }
            for row in grid {
                out.push_str(&String::from_utf8_lossy(&row));
                out.push('\n');
            }
        }
        out
    }
}

/// Formats an f64 with full round-trip precision but without the noise
/// of `{:?}` for integral values (`1` rather than `1.0` is fine to parse).
fn format_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.parse::<f64>() == Ok(v) {
        s
    } else {
        format!("{v:?}")
    }
}

fn min_max(it: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in it {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        (0.0, 1.0)
    } else {
        (lo, hi)
    }
}

fn scale(v: f64, lo: f64, hi: f64, cells: usize) -> usize {
    if hi <= lo {
        return 0;
    }
    let t = (v - lo) / (hi - lo);
    ((t * (cells - 1) as f64).round() as usize).min(cells - 1)
}

#[cfg(test)]
mod test {
    use super::*;

    fn tri() -> Topology {
        // src(0) -> R(1) -> dst(2), plus a weak direct link.
        Topology::from_matrix(
            "tri",
            vec![
                vec![0.0, 1.0, 0.49],
                vec![0.0, 0.0, 1.0],
                vec![0.0, 0.0, 0.0],
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let t = tri();
        assert_eq!(t.n(), 3);
        assert_eq!(t.link_count(), 3);
        assert_eq!(t.delivery(NodeId(0), NodeId(2)), 0.49);
        assert_eq!(t.delivery(NodeId(2), NodeId(0)), 0.0);
        assert!((t.loss(NodeId(0), NodeId(2)) - 0.51).abs() < 1e-12);
        let nbrs: Vec<_> = t.neighbors(NodeId(0)).collect();
        assert_eq!(nbrs, vec![NodeId(1), NodeId(2)]);
        assert_eq!(t.links().count(), 3);
    }

    #[test]
    fn neighbors_in_mirrors_out() {
        let t = tri();
        let into_dst: Vec<_> = t.neighbors_in(NodeId(2)).collect();
        assert_eq!(into_dst, vec![(NodeId(0), 0.49), (NodeId(1), 1.0)]);
        assert_eq!(t.neighbors_in(NodeId(0)).count(), 0);
        let out_src: Vec<_> = t.neighbors_out(NodeId(0)).collect();
        assert_eq!(out_src, vec![(NodeId(1), 1.0), (NodeId(2), 0.49)]);
    }

    #[test]
    fn from_links_matches_from_matrix() {
        let dense = tri();
        // Deliberately shuffled link order: construction sorts.
        let sparse = Topology::from_links(
            "tri",
            3,
            vec![
                Link {
                    from: NodeId(1),
                    to: NodeId(2),
                    delivery: 1.0,
                },
                Link {
                    from: NodeId(0),
                    to: NodeId(2),
                    delivery: 0.49,
                },
                Link {
                    from: NodeId(0),
                    to: NodeId(1),
                    delivery: 1.0,
                },
            ],
        );
        assert_eq!(dense.matrix(), sparse.matrix());
        assert_eq!(dense.to_json(), sparse.to_json());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_links_rejects_out_of_range() {
        Topology::from_links(
            "bad",
            2,
            vec![Link {
                from: NodeId(0),
                to: NodeId(2),
                delivery: 0.5,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate link")]
    fn from_links_rejects_duplicates() {
        let l = Link {
            from: NodeId(0),
            to: NodeId(1),
            delivery: 0.5,
        };
        Topology::from_links("bad", 2, vec![l, l]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_links_rejects_self_loop() {
        Topology::from_links(
            "bad",
            2,
            vec![Link {
                from: NodeId(1),
                to: NodeId(1),
                delivery: 0.5,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "not square")]
    fn rejects_non_square() {
        Topology::from_matrix("bad", vec![vec![0.0, 1.0], vec![0.0]]);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_probability() {
        Topology::from_matrix("bad", vec![vec![0.0, 1.5], vec![0.0, 0.0]]);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn rejects_self_link() {
        Topology::from_matrix("bad", vec![vec![0.5]]);
    }

    #[test]
    fn hop_counts() {
        let t = tri();
        assert_eq!(t.hop_count(NodeId(0), NodeId(0)), Some(0));
        assert_eq!(t.hop_count(NodeId(0), NodeId(2)), Some(1)); // direct weak link
        assert_eq!(t.hop_count(NodeId(2), NodeId(0)), None); // directed
        assert!(!t.is_connected());
    }

    #[test]
    fn hops_from_matches_hop_count() {
        let t = tri();
        let hops = t.hops_from(NodeId(0));
        for d in t.nodes() {
            assert_eq!(hops[d.0], t.hop_count(NodeId(0), d), "dst {d}");
        }
        assert_eq!(t.hops_from(NodeId(2)), vec![None, None, Some(0)]);
    }

    #[test]
    fn connectivity_is_strong() {
        // A directed ring is strongly connected; cut one arc and it isn't.
        let ring = Topology::from_links(
            "ring",
            3,
            vec![
                Link {
                    from: NodeId(0),
                    to: NodeId(1),
                    delivery: 0.9,
                },
                Link {
                    from: NodeId(1),
                    to: NodeId(2),
                    delivery: 0.9,
                },
                Link {
                    from: NodeId(2),
                    to: NodeId(0),
                    delivery: 0.9,
                },
            ],
        );
        assert!(ring.is_connected());
        let cut = Topology::from_links(
            "cut",
            3,
            vec![
                Link {
                    from: NodeId(0),
                    to: NodeId(1),
                    delivery: 0.9,
                },
                Link {
                    from: NodeId(1),
                    to: NodeId(2),
                    delivery: 0.9,
                },
            ],
        );
        assert!(!cut.is_connected());
        assert!(Topology::from_links("lonely", 1, vec![]).is_connected());
    }

    #[test]
    fn mean_loss() {
        let t = tri();
        let expect = ((1.0 - 1.0) + (1.0 - 0.49) + (1.0 - 1.0)) / 3.0;
        assert!((t.mean_link_loss() - expect).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let t = tri().with_positions(vec![
            Position {
                x: 0.0,
                y: 0.0,
                floor: 0,
            },
            Position {
                x: 10.0,
                y: 0.0,
                floor: 0,
            },
            Position {
                x: 20.0,
                y: 5.0,
                floor: 1,
            },
        ]);
        let s = t.to_json();
        let back = Topology::from_json(&s).unwrap();
        assert_eq!(back.n(), 3);
        assert_eq!(back.delivery(NodeId(0), NodeId(2)), 0.49);
        assert_eq!(back.positions().unwrap()[2].floor, 1);
    }

    #[test]
    fn sparse_json_roundtrip() {
        let t = tri().with_positions(vec![
            Position {
                x: 0.0,
                y: 0.0,
                floor: 0,
            },
            Position {
                x: 10.0,
                y: 0.0,
                floor: 0,
            },
            Position {
                x: 20.0,
                y: 5.0,
                floor: 1,
            },
        ]);
        let s = t.to_json_sparse();
        let back = Topology::from_json(&s).unwrap();
        assert_eq!(back.matrix(), t.matrix());
        assert_eq!(back.positions().unwrap()[2].floor, 1);
        // Re-serializing the reread topology is byte-stable in both forms.
        assert_eq!(back.to_json_sparse(), s);
        assert_eq!(back.to_json(), t.to_json());
    }

    #[test]
    fn sparse_json_isolated_node() {
        // "n" carries nodes the link list never mentions.
        let t = Topology::from_links(
            "island",
            3,
            vec![Link {
                from: NodeId(0),
                to: NodeId(1),
                delivery: 0.7,
            }],
        );
        let back = Topology::from_json(&t.to_json_sparse()).unwrap();
        assert_eq!(back.n(), 3);
        assert_eq!(back.neighbors(NodeId(2)).count(), 0);
    }

    #[test]
    fn sparse_json_rejects_malformed() {
        // Missing "n".
        assert!(Topology::from_json(r#"{"name": "x", "links": []}"#).is_err());
        // Link out of range.
        assert!(Topology::from_json(
            r#"{"name": "x", "n": 2, "links": [{"from": 0, "to": 5, "p": 0.5}]}"#
        )
        .is_err());
        // Probability outside (0,1].
        assert!(Topology::from_json(
            r#"{"name": "x", "n": 2, "links": [{"from": 0, "to": 1, "p": 1.5}]}"#
        )
        .is_err());
        // Self-loop.
        assert!(Topology::from_json(
            r#"{"name": "x", "n": 2, "links": [{"from": 1, "to": 1, "p": 0.5}]}"#
        )
        .is_err());
        // Duplicate ordered pair.
        assert!(Topology::from_json(
            r#"{"name": "x", "n": 2, "links": [{"from": 0, "to": 1, "p": 0.5}, {"from": 0, "to": 1, "p": 0.6}]}"#
        )
        .is_err());
        // Fractional endpoint.
        assert!(Topology::from_json(
            r#"{"name": "x", "n": 2, "links": [{"from": 0.5, "to": 1, "p": 0.5}]}"#
        )
        .is_err());
        // Missing link field.
        assert!(
            Topology::from_json(r#"{"name": "x", "n": 2, "links": [{"from": 0, "to": 1}]}"#)
                .is_err()
        );
        // Dense-form errors now surface as Err, not panics.
        assert!(Topology::from_json(r#"{"name": "x", "delivery": [[0, 2.0], [0, 0]]}"#).is_err());
        assert!(Topology::from_json(r#"{"name": "x", "delivery": [[0, 1.0], [0]]}"#).is_err());
        // Positions length mismatch.
        assert!(Topology::from_json(
            r#"{"name": "x", "n": 2, "links": [], "positions": [{"x": 0, "y": 0, "floor": 0}]}"#
        )
        .is_err());
    }

    #[test]
    fn position_distance() {
        let a = Position {
            x: 0.0,
            y: 0.0,
            floor: 0,
        };
        let b = Position {
            x: 3.0,
            y: 4.0,
            floor: 0,
        };
        assert!((a.distance(&b, 4.0) - 5.0).abs() < 1e-12);
        let c = Position {
            x: 0.0,
            y: 0.0,
            floor: 1,
        };
        assert!((a.distance(&c, 4.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_map_renders_without_positions() {
        assert_eq!(tri().ascii_map(10, 5), "(no positions)\n");
    }

    #[test]
    fn ascii_map_places_nodes() {
        let t = tri().with_positions(vec![
            Position {
                x: 0.0,
                y: 0.0,
                floor: 0,
            },
            Position {
                x: 30.0,
                y: 0.0,
                floor: 0,
            },
            Position {
                x: 60.0,
                y: 20.0,
                floor: 0,
            },
        ]);
        let map = t.ascii_map(20, 6);
        assert!(map.contains('0'));
        assert!(map.contains('1'));
        assert!(map.contains('2'));
    }
}
