//! Wireless mesh topologies for the MORE reproduction.
//!
//! A [`Topology`] is the network model of thesis §5.3.1: broadcast-capable
//! nodes and, for every ordered pair `(i, j)`, the *marginal delivery
//! probability* `p_ij` that a transmission by `i` is received by `j`.
//! Receptions at different nodes are independent given the transmitter —
//! the loss-independence assumption the thesis adopts from prior
//! measurement studies.
//!
//! Nodes may carry physical [`Position`]s (used by the testbed generator,
//! the simulator's carrier-sense/interference ranges, and the Fig 4-1 map);
//! matrix-only topologies (e.g. the Fig 5-1 diamond) work without them.
//!
//! Generators for every topology the paper uses live in [`generate`]; the
//! probing-based link estimator that stands in for Roofnet's ETX
//! measurement module is in [`estimator`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

// xtask: allow(panic_path, file) -- ascii-art grid cells are bounded by the extent computed from the same node positions; adjacency rows are sized to the node count at construction.

pub mod estimator;
pub mod generate;
pub mod json;
pub mod streams;

use std::fmt;

/// Index of a node in a topology. Dense, 0-based.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// Physical position in meters; `floor` is the building storey.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Position {
    /// East–west coordinate, meters.
    pub x: f64,
    /// North–south coordinate, meters.
    pub y: f64,
    /// Building storey the node sits on.
    pub floor: i32,
}

impl Position {
    /// Euclidean distance in the floor plane plus a per-floor vertical
    /// separation of `floor_height` meters.
    pub fn distance(&self, other: &Position, floor_height: f64) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = (self.floor - other.floor) as f64 * floor_height;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }
}

/// A directed wireless link with its delivery probability.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Link {
    /// Transmitting endpoint.
    pub from: NodeId,
    /// Receiving endpoint.
    pub to: NodeId,
    /// Marginal probability that a frame from `from` is decoded by `to`.
    pub delivery: f64,
}

/// A lossy wireless mesh: `n` nodes and an `n × n` delivery matrix.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Human-readable label ("testbed", "line4", …).
    pub name: String,
    /// `delivery[i][j]` = p_ij; diagonal is unused and kept at 0.
    delivery: Vec<Vec<f64>>,
    /// Optional physical layout, parallel to node indices.
    positions: Option<Vec<Position>>,
}

impl Topology {
    /// Builds a topology from a delivery matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square, probabilities fall outside
    /// `[0, 1]`, or a diagonal entry is non-zero.
    pub fn from_matrix(name: impl Into<String>, delivery: Vec<Vec<f64>>) -> Self {
        let n = delivery.len();
        for (i, row) in delivery.iter().enumerate() {
            assert_eq!(row.len(), n, "delivery matrix is not square");
            for (j, &p) in row.iter().enumerate() {
                assert!(
                    (0.0..=1.0).contains(&p),
                    "delivery[{i}][{j}] = {p} outside [0,1]"
                );
                if i == j {
                    assert_eq!(p, 0.0, "diagonal delivery[{i}][{i}] must be 0");
                }
            }
        }
        Topology {
            name: name.into(),
            delivery,
            positions: None,
        }
    }

    /// Attaches physical positions (must match the node count).
    pub fn with_positions(mut self, positions: Vec<Position>) -> Self {
        assert_eq!(positions.len(), self.n(), "positions length mismatch");
        self.positions = Some(positions);
        self
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.delivery.len()
    }

    /// All node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n()).map(NodeId)
    }

    /// Delivery probability `p_ij`; zero when no link exists.
    #[inline]
    pub fn delivery(&self, i: NodeId, j: NodeId) -> f64 {
        self.delivery[i.0][j.0]
    }

    /// Loss probability `ε_ij = 1 − p_ij`.
    #[inline]
    pub fn loss(&self, i: NodeId, j: NodeId) -> f64 {
        1.0 - self.delivery(i, j)
    }

    /// The raw delivery matrix.
    pub fn matrix(&self) -> &[Vec<f64>] {
        &self.delivery
    }

    /// Physical positions, if the topology has them.
    pub fn positions(&self) -> Option<&[Position]> {
        self.positions.as_deref()
    }

    /// Out-neighbors of `i`: nodes with `p_ij > 0`.
    pub fn neighbors(&self, i: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.delivery[i.0]
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(j, _)| NodeId(j))
    }

    /// Every directed link with non-zero delivery probability.
    pub fn links(&self) -> impl Iterator<Item = Link> + '_ {
        (0..self.n()).flat_map(move |i| {
            self.delivery[i]
                .iter()
                .enumerate()
                .filter(|(_, &p)| p > 0.0)
                .map(move |(j, &p)| Link {
                    from: NodeId(i),
                    to: NodeId(j),
                    delivery: p,
                })
        })
    }

    /// Mean loss rate over all existing links (both directions counted).
    pub fn mean_link_loss(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for l in self.links() {
            total += 1.0 - l.delivery;
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Minimum hop count from `src` to `dst` (BFS over links with `p > 0`),
    /// or `None` if unreachable.
    pub fn hop_count(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        if src == dst {
            return Some(0);
        }
        let n = self.n();
        let mut dist = vec![usize::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        dist[src.0] = 0;
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if dist[v.0] == usize::MAX {
                    dist[v.0] = dist[u.0] + 1;
                    if v == dst {
                        return Some(dist[v.0]);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }

    /// True when every node can reach every other node over `p > 0` links.
    pub fn is_connected(&self) -> bool {
        let n = self.n();
        if n <= 1 {
            return true;
        }
        (0..n).all(|i| (0..n).all(|j| i == j || self.hop_count(NodeId(i), NodeId(j)).is_some()))
    }

    /// Serializes to pretty JSON (hand-rolled; see [`json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": \"{}\",\n", json::escape(&self.name)));
        out.push_str("  \"delivery\": [\n");
        for (i, row) in self.delivery.iter().enumerate() {
            let cells: Vec<String> = row.iter().map(|p| format_f64(*p)).collect();
            out.push_str(&format!("    [{}]", cells.join(", ")));
            out.push_str(if i + 1 < self.delivery.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        match &self.positions {
            None => out.push_str("  \"positions\": null\n"),
            Some(pos) => {
                out.push_str("  \"positions\": [\n");
                for (i, p) in pos.iter().enumerate() {
                    out.push_str(&format!(
                        "    {{\"x\": {}, \"y\": {}, \"floor\": {}}}",
                        format_f64(p.x),
                        format_f64(p.y),
                        p.floor
                    ));
                    out.push_str(if i + 1 < pos.len() { ",\n" } else { "\n" });
                }
                out.push_str("  ]\n");
            }
        }
        out.push('}');
        out
    }

    /// Deserializes from JSON produced by [`Topology::to_json`].
    ///
    /// Validates through [`Topology::from_matrix`], so malformed
    /// probabilities are rejected rather than smuggled in.
    pub fn from_json(s: &str) -> Result<Self, json::JsonError> {
        let bad = |msg: &str| json::JsonError {
            offset: 0,
            message: msg.to_string(),
        };
        let v = json::parse(s)?;
        let name = v
            .get("name")
            .and_then(|n| n.as_str())
            .ok_or_else(|| bad("missing \"name\""))?
            .to_string();
        let delivery: Vec<Vec<f64>> = v
            .get("delivery")
            .and_then(|d| d.as_arr())
            .ok_or_else(|| bad("missing \"delivery\""))?
            .iter()
            .map(|row| {
                row.as_arr()
                    .ok_or_else(|| bad("delivery row is not an array"))?
                    .iter()
                    .map(|c| {
                        c.as_f64()
                            .ok_or_else(|| bad("delivery cell is not a number"))
                    })
                    .collect()
            })
            .collect::<Result<_, _>>()?;
        let mut topo = Topology::from_matrix(name, delivery);
        match v.get("positions") {
            None | Some(json::Value::Null) => {}
            Some(p) => {
                let positions: Vec<Position> = p
                    .as_arr()
                    .ok_or_else(|| bad("\"positions\" is not an array"))?
                    .iter()
                    .map(|q| {
                        let coord = |key: &str| {
                            q.get(key)
                                .and_then(|x| x.as_f64())
                                .ok_or_else(|| bad("position missing coordinate"))
                        };
                        Ok(Position {
                            x: coord("x")?,
                            y: coord("y")?,
                            floor: coord("floor")? as i32,
                        })
                    })
                    .collect::<Result<_, json::JsonError>>()?;
                topo = topo.with_positions(positions);
            }
        }
        Ok(topo)
    }

    /// A coarse ASCII floor map (Fig 4-1 style); one grid per floor.
    pub fn ascii_map(&self, cols: usize, rows: usize) -> String {
        let Some(pos) = &self.positions else {
            return String::from("(no positions)\n");
        };
        let (min_x, max_x) = min_max(pos.iter().map(|p| p.x));
        let (min_y, max_y) = min_max(pos.iter().map(|p| p.y));
        let floors: std::collections::BTreeSet<i32> = pos.iter().map(|p| p.floor).collect();
        let mut out = String::new();
        for floor in floors {
            out.push_str(&format!("floor {floor}:\n"));
            let mut grid = vec![vec![b'.'; cols]; rows];
            for (i, p) in pos.iter().enumerate() {
                if p.floor != floor {
                    continue;
                }
                let cx = scale(p.x, min_x, max_x, cols);
                let cy = scale(p.y, min_y, max_y, rows);
                let label = if i < 10 {
                    b'0' + i as u8
                } else {
                    b'a' + (i - 10) as u8
                };
                grid[cy][cx] = label;
            }
            for row in grid {
                out.push_str(&String::from_utf8_lossy(&row));
                out.push('\n');
            }
        }
        out
    }
}

/// Formats an f64 with full round-trip precision but without the noise
/// of `{:?}` for integral values (`1` rather than `1.0` is fine to parse).
fn format_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.parse::<f64>() == Ok(v) {
        s
    } else {
        format!("{v:?}")
    }
}

fn min_max(it: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in it {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo > hi {
        (0.0, 1.0)
    } else {
        (lo, hi)
    }
}

fn scale(v: f64, lo: f64, hi: f64, cells: usize) -> usize {
    if hi <= lo {
        return 0;
    }
    let t = (v - lo) / (hi - lo);
    ((t * (cells - 1) as f64).round() as usize).min(cells - 1)
}

#[cfg(test)]
mod test {
    use super::*;

    fn tri() -> Topology {
        // src(0) -> R(1) -> dst(2), plus a weak direct link.
        Topology::from_matrix(
            "tri",
            vec![
                vec![0.0, 1.0, 0.49],
                vec![0.0, 0.0, 1.0],
                vec![0.0, 0.0, 0.0],
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let t = tri();
        assert_eq!(t.n(), 3);
        assert_eq!(t.delivery(NodeId(0), NodeId(2)), 0.49);
        assert!((t.loss(NodeId(0), NodeId(2)) - 0.51).abs() < 1e-12);
        let nbrs: Vec<_> = t.neighbors(NodeId(0)).collect();
        assert_eq!(nbrs, vec![NodeId(1), NodeId(2)]);
        assert_eq!(t.links().count(), 3);
    }

    #[test]
    #[should_panic(expected = "not square")]
    fn rejects_non_square() {
        Topology::from_matrix("bad", vec![vec![0.0, 1.0], vec![0.0]]);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_probability() {
        Topology::from_matrix("bad", vec![vec![0.0, 1.5], vec![0.0, 0.0]]);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn rejects_self_link() {
        Topology::from_matrix("bad", vec![vec![0.5]]);
    }

    #[test]
    fn hop_counts() {
        let t = tri();
        assert_eq!(t.hop_count(NodeId(0), NodeId(0)), Some(0));
        assert_eq!(t.hop_count(NodeId(0), NodeId(2)), Some(1)); // direct weak link
        assert_eq!(t.hop_count(NodeId(2), NodeId(0)), None); // directed
        assert!(!t.is_connected());
    }

    #[test]
    fn mean_loss() {
        let t = tri();
        let expect = ((1.0 - 1.0) + (1.0 - 0.49) + (1.0 - 1.0)) / 3.0;
        assert!((t.mean_link_loss() - expect).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip() {
        let t = tri().with_positions(vec![
            Position {
                x: 0.0,
                y: 0.0,
                floor: 0,
            },
            Position {
                x: 10.0,
                y: 0.0,
                floor: 0,
            },
            Position {
                x: 20.0,
                y: 5.0,
                floor: 1,
            },
        ]);
        let s = t.to_json();
        let back = Topology::from_json(&s).unwrap();
        assert_eq!(back.n(), 3);
        assert_eq!(back.delivery(NodeId(0), NodeId(2)), 0.49);
        assert_eq!(back.positions().unwrap()[2].floor, 1);
    }

    #[test]
    fn position_distance() {
        let a = Position {
            x: 0.0,
            y: 0.0,
            floor: 0,
        };
        let b = Position {
            x: 3.0,
            y: 4.0,
            floor: 0,
        };
        assert!((a.distance(&b, 4.0) - 5.0).abs() < 1e-12);
        let c = Position {
            x: 0.0,
            y: 0.0,
            floor: 1,
        };
        assert!((a.distance(&c, 4.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ascii_map_renders_without_positions() {
        assert_eq!(tri().ascii_map(10, 5), "(no positions)\n");
    }

    #[test]
    fn ascii_map_places_nodes() {
        let t = tri().with_positions(vec![
            Position {
                x: 0.0,
                y: 0.0,
                floor: 0,
            },
            Position {
                x: 30.0,
                y: 0.0,
                floor: 0,
            },
            Position {
                x: 60.0,
                y: 20.0,
                floor: 0,
            },
        ]);
        let map = t.ascii_map(20, 6);
        assert!(map.contains('0'));
        assert!(map.contains('1'));
        assert!(map.contains('2'));
    }
}
