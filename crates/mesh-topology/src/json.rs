//! Minimal hand-rolled JSON support for topology (de)serialization.
//!
//! The build environment has no serde, and a topology file is a simple
//! shape — a name, a delivery matrix, optional positions — so a ~150-line
//! recursive-descent parser covers everything [`crate::Topology::from_json`]
//! needs. Writing happens directly in `to_json` (no intermediate value).

// xtask: allow(panic_path, file) -- scan indices are bounded by the pos < len loop conditions; parses run on spans the scanner already validated as ASCII digits.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always parsed as `f64`).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key–value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object; `None` for other value kinds.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse failure with a byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (the whole input must be consumed).
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after top-level value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    /// Four hex digits starting at `start`.
    fn hex4(&self, start: usize) -> Result<u32, JsonError> {
        let hex = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
        u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let mut cp = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            if (0xD800..=0xDBFF).contains(&cp) {
                                // UTF-16 surrogate pair: a low surrogate
                                // must follow as another \uXXXX escape.
                                if self.bytes.get(self.pos + 1..self.pos + 3)
                                    != Some(b"\\u".as_slice())
                                {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                let lo = self.hex4(self.pos + 3)?;
                                if !(0xDC00..=0xDFFF).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                self.pos += 6;
                            }
                            out.push(char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}, "e": "x\"y"}"#)
            .expect("valid JSON");
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\"y"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{} extra").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = parse(r#""mesh \ud83d\udce1""#).expect("valid surrogate pair");
        assert_eq!(v.as_str(), Some("mesh \u{1F4E1}"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(parse(r#""\ud83d\u0041""#).is_err(), "invalid low surrogate");
    }

    #[test]
    fn escape_roundtrip() {
        let s = "line\nwith \"quotes\" and \\slashes";
        let parsed = parse(&format!("\"{}\"", escape(s))).expect("valid");
        assert_eq!(parsed.as_str(), Some(s));
    }
}
