//! Srcr: ETX best-path routing with hop-by-hop 802.11 unicast (§2.1.1,
//! §4.1.1).
//!
//! Each flow follows the Dijkstra-minimal ETX path fixed at flow setup
//! (the paper feeds all three protocols the same pre-measured link
//! estimates and routes stay put for the transfer). Forwarding is
//! classic store-and-forward: every hop queues packets (50-packet queue,
//! §4.1.2), unicasts to its nexthop, and relies on the MAC's
//! retransmissions; a packet whose retries are exhausted is dropped —
//! exactly the dead-spot behaviour opportunistic routing relieves.
//!
//! With [`SrcrConfig::autorate`] the sender of every hop runs an Onoe
//! controller per nexthop (§4.4).

// xtask: allow(panic_path, file) -- SRCR per-node queues and in-flight tables are sized to the topology's node count at setup; route hops come from the Dijkstra pass over that same topology.

use mesh_metrics::etx::LinkCost;
use mesh_metrics::EtxTable;
use mesh_sim::autorate::OnoeConfig;
use mesh_sim::queue::DropCause;
use mesh_sim::{Bitrate, Ctx, Frame, NodeAgent, OnoeAutorate, OutFrame, Time, TxOutcome};
use mesh_topology::{NodeId, Topology};
use std::collections::{BTreeMap, VecDeque};

/// Srcr parameters.
#[derive(Clone, Copy, Debug)]
pub struct SrcrConfig {
    /// Data packet size on the air (1500 B in the evaluation).
    pub packet_bytes: usize,
    /// Router queue capacity in packets (50, §4.1.2).
    pub queue_len: usize,
    /// Per-link Onoe autorate instead of the fixed configured rate.
    pub autorate: bool,
    /// How the sender paces injection: the source keeps its own queue
    /// topped up to this many in-network packets (a simple window that
    /// stands in for the transport the paper's file transfer used).
    pub window: usize,
    /// Link metric for path selection. The paper's ETX accounts for the
    /// 802.11 ACK's reverse trip (§2.1.1).
    pub link_cost: LinkCost,
}

impl Default for SrcrConfig {
    fn default() -> Self {
        SrcrConfig {
            packet_bytes: 1500,
            queue_len: 50,
            autorate: false,
            window: 10,
            link_cost: LinkCost::ForwardReverse,
        }
    }
}

/// What a Srcr frame carries.
#[derive(Clone, Debug)]
pub struct SrcrPayload {
    pub flow: u32,
    pub seq: u32,
}

/// Per-flow measurement results.
#[derive(Clone, Copy, Debug, Default)]
pub struct SrcrProgress {
    /// Unique packets that reached the destination.
    pub delivered: usize,
    /// Packets dropped on the way (retry exhaustion or queue overflow).
    pub dropped: usize,
    /// Time the last packet arrived.
    pub completed_at: Option<Time>,
    /// Every packet accounted for (delivered + dropped == total injected)?
    pub done: bool,
}

struct SrcrFlow {
    id: u32,
    src: NodeId,
    dst: NodeId,
    total: usize,
    /// The fixed ETX-best path `src → … → dst`. Per-flow state is sized
    /// to this path, not to the mesh — a city-scale run admitting
    /// thousands of flows stays O(path + packets) per flow instead of
    /// O(nodes).
    path: Vec<NodeId>,
    /// Per-hop forwarding queues (seq numbers), parallel to `path`; the
    /// destination's entry stays empty.
    queues: Vec<VecDeque<u32>>,
    /// Packets the source has not injected yet.
    next_seq: u32,
    /// In-network count (injected − resolved), for source pacing.
    in_flight: usize,
    /// Delivered-seq dedup bitmap.
    got: Vec<bool>,
    progress: SrcrProgress,
    /// Withdrawn mid-run by a dynamic workload: injection and forwarding
    /// stop, and the flow counts as resolved.
    halted: bool,
}

impl SrcrFlow {
    fn resolved(&self) -> usize {
        self.progress.delivered + self.progress.dropped
    }

    /// Position of `node` on the path (paths are hop-free of repeats).
    fn hop(&self, node: NodeId) -> Option<usize> {
        self.path.iter().position(|&p| p == node)
    }

    /// The nexthop from `node`, `None` at the destination or off-path.
    fn next_hop(&self, node: NodeId) -> Option<NodeId> {
        self.hop(node).and_then(|i| self.path.get(i + 1).copied())
    }
}

/// Srcr for a whole mesh; one instance drives all nodes.
pub struct SrcrAgent {
    cfg: SrcrConfig,
    topo: Topology,
    default_rate: Bitrate,
    flows: Vec<SrcrFlow>,
    /// Flow index by wire id. `on_receive` runs once per decoded frame;
    /// a linear scan over every flow ever admitted would cost O(arrivals)
    /// per event on long Poisson runs.
    by_id: BTreeMap<u32, usize>,
    /// Per-node round-robin cursor over flows.
    rr: Vec<usize>,
    /// Flow indices whose path crosses each node, ascending. `poll_tx`
    /// visits these instead of every flow ever admitted — off-path flows
    /// can never have a queued packet there, so the cyclic scan returns
    /// the identical frame.
    node_flows: Vec<Vec<usize>>,
    /// Packets each node has handed to the MAC, oldest first:
    /// `(flow idx, seq)`. A FIFO rather than a slot because a bounded
    /// transmit queue may poll several frames before the first outcome
    /// arrives; outcomes come back in poll order.
    outstanding: Vec<VecDeque<(usize, u32)>>,
    /// Onoe state per (node, nexthop).
    autorate: BTreeMap<(NodeId, NodeId), OnoeAutorate>,
}

impl SrcrAgent {
    /// Builds an agent; `default_rate` is used when autorate is off (and
    /// as Onoe's starting rate otherwise).
    pub fn new(topo: Topology, cfg: SrcrConfig, default_rate: Bitrate) -> Self {
        let n = topo.n();
        SrcrAgent {
            cfg,
            topo,
            default_rate,
            flows: Vec::new(),
            by_id: BTreeMap::new(),
            rr: vec![0; n],
            node_flows: vec![Vec::new(); n],
            outstanding: vec![VecDeque::new(); n],
            autorate: BTreeMap::new(),
        }
    }

    /// Registers a transfer; returns its index. Kick `src` to start.
    pub fn add_flow(&mut self, id: u32, src: NodeId, dst: NodeId, total: usize) -> usize {
        assert!(total > 0, "empty transfer");
        let etx = EtxTable::compute(&self.topo, dst, self.cfg.link_cost);
        assert!(etx.dist(src).is_finite(), "source cannot reach destination");
        let path = etx.path_from(src).expect("finite distance implies a path");
        let fi = self.flows.len();
        // Every hop but the destination may poll frames for this flow.
        for &node in &path[..path.len() - 1] {
            self.node_flows[node.0].push(fi);
        }
        let previous = self.by_id.insert(id, fi);
        assert!(previous.is_none(), "duplicate flow id {id}");
        self.flows.push(SrcrFlow {
            id,
            src,
            dst,
            total,
            queues: vec![VecDeque::new(); path.len()],
            path,
            next_seq: 0,
            in_flight: 0,
            got: vec![false; total],
            progress: SrcrProgress::default(),
            halted: false,
        });
        fi
    }

    /// Withdraws flow `index` mid-run: the source stops injecting, queued
    /// packets are discarded, and the flow counts as resolved. Delivered
    /// and dropped counts stay readable.
    pub fn halt_flow(&mut self, index: usize) {
        let f = &mut self.flows[index];
        f.halted = true;
        for q in &mut f.queues {
            q.clear();
        }
    }

    /// Progress of flow `index`.
    pub fn progress(&self, index: usize) -> &SrcrProgress {
        &self.flows[index].progress
    }

    /// All flows resolved every packet (withdrawn flows count as done)?
    pub fn all_done(&self) -> bool {
        self.flows.iter().all(|f| f.progress.done || f.halted)
    }

    /// Debug: (per-hop queue lengths along the path, in-network count,
    /// next_seq) of a flow.
    pub fn debug_flow(&self, index: usize) -> (Vec<usize>, usize, u32) {
        let f = &self.flows[index];
        (
            f.queues.iter().map(|q| q.len()).collect(),
            f.in_flight,
            f.next_seq,
        )
    }

    fn rate_for(&mut self, node: NodeId, nh: NodeId) -> Option<Bitrate> {
        if !self.cfg.autorate {
            return Some(self.default_rate);
        }
        let initial = self.default_rate;
        Some(
            self.autorate
                .entry((node, nh))
                .or_insert_with(|| OnoeAutorate::new(initial, OnoeConfig::default()))
                .rate(),
        )
    }

    fn flow_index(&self, id: u32) -> Option<usize> {
        self.by_id.get(&id).copied()
    }

    /// A packet left the network (delivered or dropped): update pacing and
    /// completion.
    fn resolve(f: &mut SrcrFlow, delivered: bool, now: Time) {
        f.in_flight = f.in_flight.saturating_sub(1);
        if delivered {
            f.progress.delivered += 1;
        } else {
            f.progress.dropped += 1;
        }
        if f.resolved() >= f.total {
            f.progress.done = true;
            if f.progress.completed_at.is_none() {
                f.progress.completed_at = Some(now);
            }
        }
    }
}

impl NodeAgent for SrcrAgent {
    type Payload = SrcrPayload;

    fn on_receive(&mut self, node: NodeId, frame: &Frame<SrcrPayload>, ctx: &mut Ctx<'_>) {
        // Srcr links are point-to-point: ignore overheard frames.
        if frame.dst != Some(node) {
            return;
        }
        let Some(fi) = self.flow_index(frame.payload.flow) else {
            return;
        };
        let f = &mut self.flows[fi];
        if f.halted {
            return; // departed flows count nothing further
        }
        let seq = frame.payload.seq;
        if node == f.dst {
            let new = !std::mem::replace(&mut f.got[seq as usize], true);
            if new {
                Self::resolve(f, true, ctx.now());
                // The window opened: wake the source (the transport's ACK
                // clocking, abstracted).
                let src = f.src;
                ctx.mark_backlogged(src);
            }
            // Duplicates (data-got-through-but-MAC-ACK-lost retries) are
            // absorbed silently, as IP would.
            return;
        }
        // Forwarder: queue it (tail drop beyond the 50-packet queue).
        // Unicast frames only land on path nodes; anything else is a
        // stale frame for a withdrawn route and is dropped silently.
        let Some(hop) = f.hop(node) else {
            return;
        };
        if f.queues[hop].len() >= self.cfg.queue_len {
            let new_loss = !std::mem::replace(&mut f.got[seq as usize], true);
            if new_loss {
                Self::resolve(f, false, ctx.now());
                let src = f.src;
                ctx.mark_backlogged(src);
            }
            return;
        }
        f.queues[hop].push_back(seq);
        ctx.mark_backlogged(node);
    }

    fn on_tx_done(&mut self, node: NodeId, outcome: TxOutcome, ctx: &mut Ctx<'_>) {
        let Some((fi, seq)) = self.outstanding[node.0].pop_front() else {
            return;
        };
        let (retries, failed) = match outcome {
            TxOutcome::Acked { retries } => (retries, false),
            TxOutcome::Failed { retries } => (retries, true),
            TxOutcome::Broadcast => unreachable!("Srcr never broadcasts"),
        };
        if self.cfg.autorate {
            let nh = self.flows[fi].next_hop(node);
            if let Some(nh) = nh {
                let initial = self.default_rate;
                self.autorate
                    .entry((node, nh))
                    .or_insert_with(|| OnoeAutorate::new(initial, OnoeConfig::default()))
                    .record(ctx.now(), retries, failed);
            }
        }
        if failed {
            let f = &mut self.flows[fi];
            if f.halted {
                ctx.mark_backlogged(node);
                return;
            }
            // The MAC gave up: the packet is lost unless it already made
            // it and only the MAC ACKs were lost — we count it dropped if
            // the destination never logged it. (got[] flips exactly once.)
            let already = std::mem::replace(&mut f.got[seq as usize], true);
            if !already {
                Self::resolve(f, false, ctx.now());
                let src = f.src;
                ctx.mark_backlogged(src);
            }
        }
        ctx.mark_backlogged(node);
    }

    fn poll_tx(&mut self, node: NodeId, _ctx: &mut Ctx<'_>) -> Option<OutFrame<SrcrPayload>> {
        let nf = self.flows.len();
        if nf == 0 {
            return None;
        }
        // Cyclic scan from the cursor over this node's own flows only.
        // Off-path flows can neither top up a window here (the source is
        // on its path) nor hold a queued packet, so restricting the scan
        // visits the same flows, in the same order, as the historical
        // walk over every flow — and returns the identical frame.
        let cands = std::mem::take(&mut self.node_flows[node.0]);
        let start = self.rr[node.0] % nf;
        let pivot = cands.partition_point(|&fi| fi < start);
        for k in 0..cands.len() {
            let fi = cands[(pivot + k) % cands.len()];
            if self.flows[fi].halted {
                continue;
            }
            // Source pacing: top the window up before dequeueing.
            {
                let cfg_window = self.cfg.window;
                let f = &mut self.flows[fi];
                if node == f.src {
                    while (f.next_seq as usize) < f.total
                        && f.in_flight < cfg_window
                        && f.queues[0].len() < self.cfg.queue_len
                    {
                        f.queues[0].push_back(f.next_seq);
                        f.next_seq += 1;
                        f.in_flight += 1;
                    }
                }
            }
            let f = &self.flows[fi];
            let Some(hop) = f.hop(node) else {
                continue;
            };
            if f.queues[hop].is_empty() {
                continue;
            }
            let Some(&nh) = f.path.get(hop + 1) else {
                continue;
            };
            let rate = self.rate_for(node, nh);
            let f = &mut self.flows[fi];
            let seq = f.queues[hop].pop_front().expect("non-empty queue");
            self.outstanding[node.0].push_back((fi, seq));
            self.rr[node.0] = fi + 1;
            self.node_flows[node.0] = cands;
            return Some(OutFrame {
                dst: Some(nh),
                bytes: self.cfg.packet_bytes,
                bitrate: rate,
                flow: Some(f.id),
                payload: SrcrPayload { flow: f.id, seq },
            });
        }
        self.node_flows[node.0] = cands;
        None
    }

    fn on_queue_drop(
        &mut self,
        node: NodeId,
        payload: SrcrPayload,
        _cause: DropCause,
        ctx: &mut Ctx<'_>,
    ) {
        // The transmit queue discarded a packet the MAC never sent:
        // retract the outstanding entry and account the loss exactly like
        // a retry-exhausted unicast.
        let Some(fi) = self.flow_index(payload.flow) else {
            return;
        };
        let out = &mut self.outstanding[node.0];
        if let Some(pos) = out.iter().rposition(|&(i, s)| i == fi && s == payload.seq) {
            out.remove(pos);
        }
        let f = &mut self.flows[fi];
        if f.halted {
            return;
        }
        let already = std::mem::replace(&mut f.got[payload.seq as usize], true);
        if !already {
            Self::resolve(f, false, ctx.now());
            let src = f.src;
            ctx.mark_backlogged(src);
        }
    }
}

impl mesh_sim::FlowAgent for SrcrAgent {
    fn flows_done(&self) -> bool {
        self.all_done()
    }

    fn flow_progress(&self, index: usize) -> mesh_sim::FlowProgressView {
        let p = self.progress(index);
        mesh_sim::FlowProgressView {
            delivered: p.delivered,
            completed_at: p.completed_at,
            done: p.done,
        }
    }

    fn supports_dynamic_flows(&self) -> bool {
        true
    }

    fn add_flow(&mut self, desc: &mesh_sim::FlowDesc) -> usize {
        assert_eq!(
            desc.dsts.len(),
            1,
            "Srcr routes along a single best path; multicast arrivals are unsupported"
        );
        let id = self.by_id.keys().next_back().copied().unwrap_or(0) + 1;
        SrcrAgent::add_flow(self, id, desc.src, desc.dsts[0], desc.packets)
    }

    fn end_flow(&mut self, index: usize) {
        self.halt_flow(index);
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use mesh_sim::{SimConfig, Simulator, SEC};
    use mesh_topology::generate;

    fn run(
        topo: Topology,
        cfg: SrcrConfig,
        src: usize,
        dst: usize,
        total: usize,
        seed: u64,
    ) -> (Simulator<SrcrAgent>, usize) {
        let mut agent = SrcrAgent::new(topo.clone(), cfg, Bitrate::B5_5);
        let fi = agent.add_flow(1, NodeId(src), NodeId(dst), total);
        let mut sim = Simulator::new(topo, SimConfig::default(), agent, seed);
        sim.kick(NodeId(src));
        sim.run_until(600 * SEC, |a: &SrcrAgent| a.all_done());
        (sim, fi)
    }

    #[test]
    fn perfect_line_delivers_everything() {
        let topo = generate::line(2, 1.0, 0.0, 25.0);
        let (sim, fi) = run(topo, SrcrConfig::default(), 0, 2, 100, 1);
        let p = sim.agent.progress(fi);
        assert!(p.done);
        assert_eq!(p.delivered, 100);
        assert_eq!(p.dropped, 0);
    }

    #[test]
    fn lossy_line_mostly_delivers_via_retries() {
        let topo = generate::line(2, 0.7, 0.0, 25.0);
        let (sim, fi) = run(topo, SrcrConfig::default(), 0, 2, 200, 2);
        let p = sim.agent.progress(fi);
        assert!(p.done);
        // Per-hop attempt success = 0.49 (data × MAC-ACK); 8 attempts
        // ⇒ ~0.5% loss per hop.
        assert!(p.delivered >= 190, "delivered {}", p.delivered);
    }

    #[test]
    fn routes_follow_etx_not_hops() {
        // Weak direct link vs two perfect hops: Srcr must relay. (The
        // symmetric version of the Fig 1-1 example — Srcr's
        // forward-reverse ETX needs bidirectional links.)
        let topo = generate::motivating_symmetric();
        let (sim, fi) = run(topo, SrcrConfig::default(), 0, 2, 50, 3);
        let p = *sim.agent.progress(fi);
        assert!(p.done);
        assert_eq!(p.delivered, 50);
        // Node 1 (the relay) must have carried traffic.
        assert!(sim.stats.tx_frames[1] >= 50);
    }

    #[test]
    fn testbed_transfer_completes() {
        let topo = generate::testbed(1);
        let (sim, fi) = run(topo, SrcrConfig::default(), 0, 19, 64, 4);
        let p = sim.agent.progress(fi);
        assert!(p.done, "srcr testbed flow stuck");
        assert!(
            p.delivered + p.dropped == 64 && p.delivered >= 48,
            "delivered {} dropped {}",
            p.delivered,
            p.dropped
        );
    }

    #[test]
    fn multiflow_shares_the_medium() {
        let topo = generate::testbed(2);
        let mut agent = SrcrAgent::new(topo.clone(), SrcrConfig::default(), Bitrate::B5_5);
        let f1 = agent.add_flow(1, NodeId(0), NodeId(19), 60);
        let f2 = agent.add_flow(2, NodeId(7), NodeId(11), 60);
        let mut sim = Simulator::new(topo, SimConfig::default(), agent, 5);
        sim.kick(NodeId(0));
        sim.kick(NodeId(7));
        sim.run_until(600 * SEC, |a: &SrcrAgent| a.all_done());
        assert!(sim.agent.progress(f1).done);
        assert!(sim.agent.progress(f2).done);
    }

    #[test]
    fn autorate_engages_per_link_state() {
        let topo = generate::line(1, 0.95, 0.0, 20.0);
        let cfg = SrcrConfig {
            autorate: true,
            ..SrcrConfig::default()
        };
        let mut agent = SrcrAgent::new(topo.clone(), cfg, Bitrate::B11);
        let fi = agent.add_flow(1, NodeId(0), NodeId(1), 400);
        let mut sim = Simulator::new(topo, SimConfig::default(), agent, 6);
        sim.kick(NodeId(0));
        sim.run_until(600 * SEC, |a: &SrcrAgent| a.all_done());
        assert!(sim.agent.progress(fi).done);
        assert!(
            !sim.agent.autorate.is_empty(),
            "autorate state never created"
        );
    }
}
