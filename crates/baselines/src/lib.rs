//! The protocols MORE is evaluated against (thesis §4.1.1):
//!
//! * [`srcr`] — Srcr, "a state-of-the-art best path routing protocol for
//!   wireless mesh networks": Dijkstra over ETX link weights, unicast
//!   hop-by-hop forwarding with 802.11 retransmission, 50-packet queues,
//!   optionally driven by Onoe autorate (§4.4).
//! * [`exor`] — ExOR, "the current opportunistic routing protocol":
//!   batches, per-packet batch maps, and the strict one-transmitter-at-a-
//!   time forwarder schedule in ETX order that ties the MAC to routing —
//!   the structure MORE trades for randomness.
//!
//! Both are implemented as [`mesh_sim::NodeAgent`]s so every figure runs
//! all three protocols over the identical medium, topology, and seed
//! discipline.

#![forbid(unsafe_code)]

pub mod exor;
pub mod srcr;

pub use exor::{ExorAgent, ExorConfig};
pub use srcr::{SrcrAgent, SrcrConfig};
