//! ExOR: opportunistic routing with a strict transmission schedule
//! (Biswas & Morris, SIGCOMM 2005; thesis §2.2.1).
//!
//! The file moves in batches. Every data frame carries a *batch map* — for
//! each packet, the priority (ETX rank, 0 = destination) of the closest
//! node known to hold it. Forwarders transmit strictly one at a time in a
//! round-robin schedule ordered by ETX ("dst > C > B > A > src"): a node
//! takes its turn when it hears its predecessor finish (a frame with
//! `remaining == 0`) or when a silence timeout expires — the "fragile
//! timing estimates" the thesis calls out. During its turn a node sends
//! only packets that, per its local map, no closer node holds; the
//! destination uses its (highest-priority) turn to gossip its map, which
//! is how batch ACK information propagates back.
//!
//! When a node's map shows the destination holding ≥ 90 % of the batch,
//! the remaining packets travel by traditional unicast routing along the
//! ETX path (the ExOR endgame), and the destination reliably unicasts a
//! `BatchDone` back to the source, which then starts the next batch.
//!
//! Because only the schedule's current speaker may transmit, a single
//! ExOR flow cannot exploit spatial reuse — the structural cost MORE
//! removes (§4.2.3).

// xtask: allow(panic_path, file) -- ExOR per-flow state (batch maps, forwarder lists, per-node queues) is sized to the participant set fixed at flow setup; node and sequence indices are checked against that set on receive before any indexed access.

use bytes::Bytes;
use mesh_metrics::etx::LinkCost;
use mesh_metrics::{EtxTable, ForwarderPlan, PlanConfig};
use mesh_sim::{Ctx, Frame, NodeAgent, OutFrame, Time, TxOutcome};
use mesh_topology::{NodeId, Topology};
use std::collections::VecDeque;

/// "No known holder" sentinel in batch maps.
const NO_HOLDER: u8 = u8::MAX;

/// ExOR parameters.
#[derive(Clone, Copy, Debug)]
pub struct ExorConfig {
    /// Batch size K (32 in the evaluation; Fig 4-7 sweeps 8–128).
    pub k: usize,
    /// Native packet size on the air.
    pub packet_bytes: usize,
    /// Extra header bytes beyond the K-byte batch map.
    pub header_extra: usize,
    /// Silence gap after which the schedule advances locally.
    pub gap_timeout: Time,
    /// Fraction of the batch at the destination that ends the
    /// opportunistic phase (ExOR uses 90 %).
    pub completion_fraction: f64,
    /// Forwarder selection (shared with MORE for a fair comparison).
    pub plan: PlanConfig,
}

impl Default for ExorConfig {
    fn default() -> Self {
        ExorConfig {
            k: 32,
            packet_bytes: 1500,
            header_extra: 24,
            gap_timeout: 15_000,
            completion_fraction: 0.9,
            plan: PlanConfig::default(),
        }
    }
}

/// What an ExOR frame carries.
#[derive(Clone, Debug)]
pub enum ExorPayload {
    /// A batch data packet, broadcast during the sender's turn.
    Data {
        flow: u32,
        batch: u32,
        seq: u32,
        sender_rank: u8,
        /// Packets the sender will still transmit this turn (0 ⇒ the turn
        /// passes to the next rank).
        remaining: u16,
        /// Batch map: best-known holder rank per packet. Refcounted so the
        /// engine's per-receiver frame clone is O(1), not a map copy.
        map: Bytes,
    },
    /// A map-only frame: the destination's slot, or an empty turn's
    /// explicit handoff.
    Gossip {
        flow: u32,
        batch: u32,
        sender_rank: u8,
        map: Bytes,
    },
    /// Endgame unicast of a straggler packet along the ETX path.
    Direct { flow: u32, batch: u32, seq: u32 },
    /// Reliable hop-by-hop notification that the batch is complete.
    BatchDone { flow: u32, batch: u32 },
}

/// Per-flow measurement results.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExorProgress {
    /// Packets that reached the destination.
    pub delivered: usize,
    /// Batches fully received.
    pub completed_batches: u32,
    /// Time the final packet arrived.
    pub completed_at: Option<Time>,
    /// The source has advanced past the last batch.
    pub done: bool,
}

/// Per-node, per-flow schedule and batch state.
struct NodeState {
    batch: u32,
    /// Packets of the current batch this node holds.
    holds: Vec<bool>,
    /// Best-known holder rank per packet.
    map: Vec<u8>,
    /// Whose turn the node believes it is (rank index).
    speaker: u8,
    /// Timer generation (stale-timer rejection).
    timer_gen: u64,
    /// Packets queued for my current turn.
    turn_queue: VecDeque<u32>,
    /// True while I am mid-turn (turn_queue draining).
    in_turn: bool,
    /// Endgame unicasts waiting at this node: `(batch, seq)` — relays may
    /// carry packets for batches they never overheard.
    direct_queue: VecDeque<(u32, u32)>,
    /// Seqs already injected into the endgame by this node.
    direct_sent: Vec<bool>,
    /// `BatchDone` notifications waiting to be forwarded toward the source.
    done_queue: VecDeque<u32>,
}

impl NodeState {
    fn new(k: usize) -> Self {
        NodeState {
            batch: 0,
            holds: vec![false; k],
            map: vec![NO_HOLDER; k],
            speaker: 0,
            timer_gen: 0,
            turn_queue: VecDeque::new(),
            in_turn: false,
            direct_queue: VecDeque::new(),
            direct_sent: vec![false; k],
            done_queue: VecDeque::new(),
        }
    }

    fn reset_for(&mut self, batch: u32, k: usize, speaker: u8) {
        self.batch = batch;
        self.holds = vec![false; k];
        self.map = vec![NO_HOLDER; k];
        self.speaker = speaker;
        self.turn_queue.clear();
        self.in_turn = false;
        self.direct_queue.clear();
        self.direct_sent = vec![false; k];
        // done_queue intentionally survives: it refers to older batches.
    }

    fn dst_has(&self) -> usize {
        self.map.iter().filter(|&&m| m == 0).count()
    }
}

struct ExorFlow {
    id: u32,
    src: NodeId,
    dst: NodeId,
    total: usize,
    plan: ForwarderPlan,
    /// Rank (schedule priority) per node; `None` = non-participant.
    rank_of: Vec<Option<u8>>,
    /// ETX nexthop toward the destination (endgame unicasts).
    to_dst: Vec<Option<NodeId>>,
    /// ETX nexthop toward the source (`BatchDone`).
    to_src: Vec<Option<NodeId>>,
    nodes: Vec<NodeState>,
    /// Batch the source currently serves.
    src_batch: u32,
    /// Latest batch the destination has fully received (credit latch).
    dst_complete_through: Option<u32>,
    progress: ExorProgress,
    /// Withdrawn mid-run by a dynamic workload: the schedule goes silent
    /// and the flow counts as resolved.
    halted: bool,
}

impl ExorFlow {
    fn n_batches(&self, cfg: &ExorConfig) -> u32 {
        self.total.div_ceil(cfg.k) as u32
    }

    fn k_of(&self, cfg: &ExorConfig, b: u32) -> usize {
        let nb = self.n_batches(cfg);
        if b + 1 < nb || self.total.is_multiple_of(cfg.k) {
            cfg.k
        } else {
            self.total % cfg.k
        }
    }

    fn n_ranks(&self) -> u8 {
        self.plan.order.len() as u8
    }

    fn is_done(&self, cfg: &ExorConfig) -> bool {
        self.halted || self.src_batch >= self.n_batches(cfg)
    }
}

/// A reliable unicast a node has handed to its MAC, with everything
/// needed to re-queue it on failure or queue drop.
#[derive(Clone, Copy)]
enum InFlight {
    Direct { fi: usize, batch: u32, seq: u32 },
    Done { fi: usize, batch: u32 },
}

/// ExOR for a whole mesh; one instance drives all nodes.
pub struct ExorAgent {
    cfg: ExorConfig,
    topo: Topology,
    flows: Vec<ExorFlow>,
    rr: Vec<usize>,
    /// Reliable unicasts each node has handed to the MAC, oldest first.
    /// A FIFO rather than a slot because a bounded transmit queue may
    /// poll several frames before the first outcome arrives; unicast
    /// outcomes come back in poll order (broadcasts report
    /// [`TxOutcome::Broadcast`] and never enter this FIFO).
    outstanding: Vec<VecDeque<InFlight>>,
}

impl ExorAgent {
    pub fn new(topo: Topology, cfg: ExorConfig) -> Self {
        let n = topo.n();
        ExorAgent {
            cfg,
            topo,
            flows: Vec::new(),
            rr: vec![0; n],
            outstanding: vec![VecDeque::new(); n],
        }
    }

    /// Puts a reliable unicast the MAC could not deliver (or the queue
    /// dropped) back at the head of the queue it was polled from.
    fn requeue_unicast(&mut self, node: NodeId, inf: InFlight) {
        match inf {
            InFlight::Direct { fi, batch, seq } => {
                let f = &mut self.flows[fi];
                if !f.halted {
                    f.nodes[node.0].direct_queue.push_front((batch, seq));
                }
            }
            InFlight::Done { fi, batch } => {
                let f = &mut self.flows[fi];
                if !f.halted {
                    f.nodes[node.0].done_queue.push_front(batch);
                }
            }
        }
    }

    /// Registers a transfer; returns its index. Kick `src` to start.
    pub fn add_flow(&mut self, id: u32, src: NodeId, dst: NodeId, total: usize) -> usize {
        assert!(total > 0, "empty transfer");
        let n = self.topo.n();
        let etx = EtxTable::compute(&self.topo, dst, LinkCost::Forward);
        let plan = ForwarderPlan::compute(&self.topo, src, dst, etx.distances(), &self.cfg.plan);
        assert!(
            plan.order.len() <= NO_HOLDER as usize,
            "too many participants for u8 ranks"
        );
        let mut rank_of = vec![None; n];
        for (r, &node) in plan.order.iter().enumerate() {
            rank_of[node.0] = Some(r as u8);
        }
        // Reliable unicasts (endgame packets, BatchDone) need MAC ACKs,
        // so their next-hop tables use the forward-reverse ETX.
        let etx_fr = EtxTable::compute(&self.topo, dst, LinkCost::ForwardReverse);
        let to_dst = (0..n).map(|i| etx_fr.next_hop(NodeId(i))).collect();
        let etx_src = EtxTable::compute(&self.topo, src, LinkCost::ForwardReverse);
        let to_src = (0..n).map(|i| etx_src.next_hop(NodeId(i))).collect();
        let k0 = self.cfg.k.min(total);
        let src_rank = (plan.order.len() - 1) as u8;
        let mut nodes: Vec<NodeState> = (0..n).map(|_| NodeState::new(k0)).collect();
        for ns in &mut nodes {
            ns.speaker = src_rank; // the source opens the batch
        }
        // The source holds everything.
        let src_state = &mut nodes[src.0];
        src_state.holds = vec![true; k0];
        src_state.map = vec![src_rank; k0];
        self.flows.push(ExorFlow {
            id,
            src,
            dst,
            total,
            plan,
            rank_of,
            to_dst,
            to_src,
            nodes,
            src_batch: 0,
            dst_complete_through: None,
            progress: ExorProgress::default(),
            halted: false,
        });
        self.flows.len() - 1
    }

    /// Withdraws flow `index` mid-run: turns end, queued endgame and
    /// `BatchDone` unicasts are dropped, and the flow counts as resolved.
    pub fn halt_flow(&mut self, index: usize) {
        let f = &mut self.flows[index];
        f.halted = true;
        for ns in &mut f.nodes {
            ns.turn_queue.clear();
            ns.in_turn = false;
            ns.direct_queue.clear();
            ns.done_queue.clear();
        }
    }

    pub fn progress(&self, index: usize) -> &ExorProgress {
        &self.flows[index].progress
    }

    pub fn all_done(&self) -> bool {
        self.flows.iter().all(|f| f.progress.done || f.halted)
    }

    /// Debug: for every packet the destination misses, who holds it and
    /// what the maps say: (seq, [(rank, holds, map, direct_sent)]).
    #[allow(clippy::type_complexity)]
    pub fn debug_missing(&self, index: usize) -> Vec<(u32, Vec<(u8, bool, u8, bool)>)> {
        let f = &self.flows[index];
        let dst_ns = &f.nodes[f.dst.0];
        let mut out = Vec::new();
        for p in 0..dst_ns.holds.len() {
            if dst_ns.holds[p] {
                continue;
            }
            let view = f
                .plan
                .order
                .iter()
                .enumerate()
                .map(|(r, &n)| {
                    let ns = &f.nodes[n.0];
                    (
                        r as u8,
                        ns.holds.get(p).copied().unwrap_or(false),
                        ns.map.get(p).copied().unwrap_or(255),
                        ns.direct_sent.get(p).copied().unwrap_or(false),
                    )
                })
                .collect();
            out.push((p as u32, view));
        }
        out
    }

    /// Debug: next hops toward the destination per participant.
    pub fn debug_to_dst(&self, index: usize) -> Vec<(NodeId, Option<NodeId>)> {
        let f = &self.flows[index];
        f.plan.order.iter().map(|&n| (n, f.to_dst[n.0])).collect()
    }

    /// Debug: per-node (speaker, in_turn, holds count, dst_has, queues).
    #[allow(clippy::type_complexity)]
    pub fn debug_flow(&self, index: usize) -> Vec<(u8, bool, usize, usize, usize, usize)> {
        let f = &self.flows[index];
        f.plan
            .order
            .iter()
            .map(|&n| {
                let ns = &f.nodes[n.0];
                (
                    ns.speaker,
                    ns.in_turn,
                    ns.holds.iter().filter(|&&h| h).count(),
                    ns.dst_has(),
                    ns.direct_queue.len(),
                    ns.done_queue.len(),
                )
            })
            .collect()
    }

    fn flow_index(&self, id: u32) -> Option<usize> {
        self.flows.iter().position(|f| f.id == id)
    }

    /// Timer token packing: flow index in the high bits, generation low.
    fn token(fi: usize, gen: u64) -> u64 {
        ((fi as u64) << 40) | (gen & 0xFF_FFFF_FFFF)
    }

    fn untoken(token: u64) -> (usize, u64) {
        ((token >> 40) as usize, token & 0xFF_FFFF_FFFF)
    }

    /// Re-arms the silence timer for `node` on flow `fi`.
    fn arm_timer(cfg: &ExorConfig, fi: usize, ns: &mut NodeState, node: NodeId, ctx: &mut Ctx<'_>) {
        ns.timer_gen += 1;
        ctx.set_timer(node, cfg.gap_timeout, Self::token(fi, ns.timer_gen));
    }

    /// Advances the local schedule pointer past `from`.
    fn next_rank(n_ranks: u8, from: u8) -> u8 {
        (from + 1) % n_ranks
    }

    /// Node `node` believes it now holds the token: build its turn.
    fn begin_turn(
        f: &mut ExorFlow,
        cfg: &ExorConfig,
        node: NodeId,
        my_rank: u8,
        ctx: &mut Ctx<'_>,
    ) {
        let k = f.k_of(cfg, f.nodes[node.0].batch);
        let threshold = (cfg.completion_fraction * k as f64).ceil() as usize;
        let ns = &mut f.nodes[node.0];
        ns.turn_queue.clear();
        // The destination (rank 0) only gossips. Once the destination is
        // known to hold >= 90% of the batch, the opportunistic rounds stop
        // queueing data — the endgame unicasts carry the stragglers.
        if my_rank > 0 && ns.dst_has() < threshold {
            for p in 0..k {
                // Send packets I hold that no STRICTLY closer node is
                // known to hold (my own rank counts as "mine to send").
                if ns.holds[p] && ns.map[p] >= my_rank {
                    ns.turn_queue.push_back(p as u32);
                }
            }
        }
        ns.in_turn = true;
        ctx.mark_backlogged(node);
    }

    /// Merge a heard map into local state; returns true if anything
    /// changed (used to trigger the endgame check).
    fn merge_map(ns: &mut NodeState, heard: &[u8]) {
        for (m, &h) in ns.map.iter_mut().zip(heard) {
            *m = (*m).min(h);
        }
    }

    /// The endgame: once the destination has ≥ completion_fraction of the
    /// batch, the best-known holder of each straggler unicasts it.
    fn maybe_enter_endgame(f: &mut ExorFlow, cfg: &ExorConfig, node: NodeId, ctx: &mut Ctx<'_>) {
        let Some(rank) = f.rank_of[node.0] else {
            return;
        };
        if node == f.dst {
            return;
        }
        let k = f.k_of(cfg, f.nodes[node.0].batch);
        let ns = &mut f.nodes[node.0];
        let threshold = (cfg.completion_fraction * k as f64).ceil() as usize;
        if ns.dst_has() < threshold {
            return;
        }
        let mut queued = false;
        for p in 0..k {
            if ns.holds[p] && ns.map[p] != 0 && ns.map[p] >= rank && !ns.direct_sent[p] {
                ns.direct_sent[p] = true;
                let b = ns.batch;
                ns.direct_queue.push_back((b, p as u32));
                queued = true;
            }
        }
        if queued {
            ctx.mark_backlogged(node);
        }
    }
}

impl NodeAgent for ExorAgent {
    type Payload = ExorPayload;

    fn on_receive(&mut self, node: NodeId, frame: &Frame<ExorPayload>, ctx: &mut Ctx<'_>) {
        let cfg = self.cfg;
        match &frame.payload {
            ExorPayload::Data {
                flow,
                batch,
                seq,
                sender_rank,
                remaining,
                map,
            } => {
                let Some(fi) = self.flow_index(*flow) else {
                    return;
                };
                let f = &mut self.flows[fi];
                let Some(my_rank) = f.rank_of[node.0] else {
                    return;
                };
                if f.is_done(&cfg) {
                    return;
                }
                let ns = &mut f.nodes[node.0];
                if *batch < ns.batch {
                    return;
                }
                if *batch > ns.batch {
                    let k_new = f.k_of(&cfg, *batch);
                    let n_ranks = f.n_ranks();
                    f.nodes[node.0].reset_for(*batch, k_new, n_ranks - 1);
                }
                let k = f.k_of(&cfg, *batch);
                let n_ranks = f.n_ranks();
                let ns = &mut f.nodes[node.0];
                // Store the packet and merge the map.
                let p = *seq as usize;
                if p < k {
                    ns.holds[p] = true;
                    ns.map[p] = ns.map[p].min(my_rank).min(*sender_rank);
                }
                Self::merge_map(ns, map);
                // Schedule bookkeeping: the sender holds the token.
                ns.speaker = *sender_rank;
                if *remaining == 0 {
                    let nxt = Self::next_rank(n_ranks, *sender_rank);
                    ns.speaker = nxt;
                    if nxt == my_rank && !ns.in_turn {
                        Self::begin_turn(f, &cfg, node, my_rank, ctx);
                        let ns = &mut f.nodes[node.0];
                        Self::arm_timer(&cfg, fi, ns, node, ctx);
                        if node == f.dst {
                            Self::dst_check_complete(f, &cfg, ctx);
                        } else {
                            Self::maybe_enter_endgame(f, &cfg, node, ctx);
                        }
                        return;
                    }
                }
                Self::arm_timer(&cfg, fi, &mut f.nodes[node.0], node, ctx);
                if node == f.dst {
                    Self::dst_check_complete(f, &cfg, ctx);
                } else {
                    Self::maybe_enter_endgame(f, &cfg, node, ctx);
                }
            }
            ExorPayload::Gossip {
                flow,
                batch,
                sender_rank,
                map,
            } => {
                let Some(fi) = self.flow_index(*flow) else {
                    return;
                };
                let f = &mut self.flows[fi];
                let Some(my_rank) = f.rank_of[node.0] else {
                    return;
                };
                if f.is_done(&cfg) {
                    return;
                }
                let ns = &mut f.nodes[node.0];
                if *batch < ns.batch {
                    return;
                }
                if *batch > ns.batch {
                    let k_new = f.k_of(&cfg, *batch);
                    let n_ranks = f.n_ranks();
                    f.nodes[node.0].reset_for(*batch, k_new, n_ranks - 1);
                }
                let n_ranks = f.n_ranks();
                let ns = &mut f.nodes[node.0];
                Self::merge_map(ns, map);
                let nxt = Self::next_rank(n_ranks, *sender_rank);
                ns.speaker = nxt;
                if nxt == my_rank && !ns.in_turn {
                    Self::begin_turn(f, &cfg, node, my_rank, ctx);
                }
                Self::arm_timer(&cfg, fi, &mut f.nodes[node.0], node, ctx);
                if node == f.dst {
                    Self::dst_check_complete(f, &cfg, ctx);
                } else {
                    Self::maybe_enter_endgame(f, &cfg, node, ctx);
                }
            }
            ExorPayload::Direct { flow, batch, seq } => {
                if frame.dst != Some(node) {
                    return;
                }
                let Some(fi) = self.flow_index(*flow) else {
                    return;
                };
                let f = &mut self.flows[fi];
                if f.is_done(&cfg) {
                    return;
                }
                if node == f.dst {
                    let ns = &mut f.nodes[node.0];
                    if *batch < ns.batch {
                        return; // stale endgame packet
                    }
                    if *batch > ns.batch {
                        // The endgame outran the broadcasts of this batch.
                        let k_new = f.k_of(&cfg, *batch);
                        let n_ranks = f.n_ranks();
                        f.nodes[node.0].reset_for(*batch, k_new, n_ranks - 1);
                    }
                    let ns = &mut f.nodes[node.0];
                    let p = *seq as usize;
                    if p < ns.holds.len() {
                        ns.holds[p] = true;
                        ns.map[p] = 0;
                    }
                    Self::dst_check_complete(f, &cfg, ctx);
                } else {
                    // Relay toward the destination — even for batches this
                    // node has no broadcast state for (it may not be a
                    // forwarder at all, just an ETX-path hop).
                    f.nodes[node.0].direct_queue.push_back((*batch, *seq));
                    ctx.mark_backlogged(node);
                }
            }
            ExorPayload::BatchDone { flow, batch } => {
                let Some(fi) = self.flow_index(*flow) else {
                    return;
                };
                let f = &mut self.flows[fi];
                // BatchDone is a point-to-point relay toward the source;
                // overhearers ignore it.
                if frame.dst != Some(node) {
                    return;
                }
                if f.halted {
                    return; // a withdrawn flow relays nothing
                }
                if node == f.src {
                    if *batch >= f.src_batch && !f.is_done(&cfg) {
                        Self::advance_src_batch(f, &cfg, *batch + 1, ctx);
                    }
                } else {
                    f.nodes[node.0].done_queue.push_back(*batch);
                    ctx.mark_backlogged(node);
                }
            }
        }
    }

    fn on_tx_done(&mut self, node: NodeId, outcome: TxOutcome, ctx: &mut Ctx<'_>) {
        match outcome {
            TxOutcome::Broadcast => {
                // If my turn just ended (queue drained), pass the token on
                // my own schedule view.
                for fi in 0..self.flows.len() {
                    let cfg = self.cfg;
                    let f = &mut self.flows[fi];
                    let Some(my_rank) = f.rank_of[node.0] else {
                        continue;
                    };
                    let n_ranks = f.n_ranks();
                    let ns = &mut f.nodes[node.0];
                    if ns.in_turn && ns.turn_queue.is_empty() {
                        ns.in_turn = false;
                        ns.speaker = Self::next_rank(n_ranks, my_rank);
                        Self::arm_timer(&cfg, fi, ns, node, ctx);
                    }
                }
            }
            TxOutcome::Acked { .. } => {
                // The oldest outstanding unicast made it; it was already
                // removed from its pending queue at poll time.
                if self.outstanding[node.0].pop_front().is_some() {
                    ctx.mark_backlogged(node);
                }
            }
            TxOutcome::Failed { .. } => {
                // Re-queue at the front; try again.
                if let Some(inf) = self.outstanding[node.0].pop_front() {
                    self.requeue_unicast(node, inf);
                }
                ctx.mark_backlogged(node);
            }
        }
    }

    fn poll_tx(&mut self, node: NodeId, _ctx: &mut Ctx<'_>) -> Option<OutFrame<ExorPayload>> {
        let cfg = self.cfg;
        let nf = self.flows.len();
        if nf == 0 {
            return None;
        }
        // 1. Reliable control/endgame unicasts first.
        for fi in 0..nf {
            let f = &self.flows[fi];
            let ns = &f.nodes[node.0];
            if let Some(&batch) = ns.done_queue.front() {
                if let Some(nh) = f.to_src[node.0] {
                    let id = f.id;
                    // Popped now (not on MAC ack): the frame's fate comes
                    // back via on_tx_done/on_queue_drop, both of which
                    // consult the outstanding FIFO.
                    self.flows[fi].nodes[node.0].done_queue.pop_front();
                    self.outstanding[node.0].push_back(InFlight::Done { fi, batch });
                    return Some(OutFrame {
                        dst: Some(nh),
                        bytes: 30,
                        bitrate: None,
                        flow: Some(id),
                        payload: ExorPayload::BatchDone { flow: id, batch },
                    });
                }
            }
            let f = &self.flows[fi];
            let ns = &f.nodes[node.0];
            if let Some(&(batch, seq)) = ns.direct_queue.front() {
                if let Some(nh) = f.to_dst[node.0] {
                    let id = f.id;
                    self.flows[fi].nodes[node.0].direct_queue.pop_front();
                    self.outstanding[node.0].push_back(InFlight::Direct { fi, batch, seq });
                    return Some(OutFrame {
                        dst: Some(nh),
                        bytes: cfg.packet_bytes + cfg.header_extra,
                        bitrate: None,
                        flow: Some(id),
                        payload: ExorPayload::Direct {
                            flow: id,
                            batch,
                            seq,
                        },
                    });
                }
            }
        }
        // 2. Turn-based broadcasts.
        let start = self.rr[node.0] % nf;
        for step in 0..nf {
            let fi = (start + step) % nf;
            let f = &mut self.flows[fi];
            if f.is_done(&cfg) {
                continue;
            }
            let Some(my_rank) = f.rank_of[node.0] else {
                continue;
            };
            let ns = &mut f.nodes[node.0];
            if !ns.in_turn {
                continue;
            }
            let k = ns.holds.len();
            if let Some(seq) = ns.turn_queue.pop_front() {
                ns.map[seq as usize] = ns.map[seq as usize].min(my_rank);
                let remaining = ns.turn_queue.len() as u16;
                let map = Bytes::copy_from_slice(&ns.map);
                self.rr[node.0] = fi + 1;
                return Some(OutFrame {
                    dst: None,
                    bytes: cfg.packet_bytes + cfg.header_extra + k,
                    bitrate: None,
                    flow: Some(f.id),
                    payload: ExorPayload::Data {
                        flow: f.id,
                        batch: ns.batch,
                        seq,
                        sender_rank: my_rank,
                        remaining,
                        map,
                    },
                });
            }
            // Empty turn: one gossip frame passes the token explicitly.
            let map = Bytes::copy_from_slice(&ns.map);
            let batch = ns.batch;
            self.rr[node.0] = fi + 1;
            return Some(OutFrame {
                dst: None,
                bytes: 30 + k,
                bitrate: None,
                flow: Some(f.id),
                payload: ExorPayload::Gossip {
                    flow: f.id,
                    batch,
                    sender_rank: my_rank,
                    map,
                },
            });
        }
        None
    }

    fn on_queue_drop(
        &mut self,
        node: NodeId,
        payload: ExorPayload,
        _cause: mesh_sim::queue::DropCause,
        ctx: &mut Ctx<'_>,
    ) {
        // Reliable unicasts must survive a queue drop: retract the
        // outstanding entry and re-queue. Dropped broadcasts are just
        // unheard transmissions; their payloads hold nothing pooled.
        let removed = match payload {
            ExorPayload::Direct { flow, batch, seq } => self.flow_index(flow).and_then(|fi| {
                let out = &mut self.outstanding[node.0];
                out.iter()
                    .rposition(|inf| {
                        matches!(inf, InFlight::Direct { fi: i, batch: b, seq: s }
                                if *i == fi && *b == batch && *s == seq)
                    })
                    .and_then(|pos| out.remove(pos))
            }),
            ExorPayload::BatchDone { flow, batch } => self.flow_index(flow).and_then(|fi| {
                let out = &mut self.outstanding[node.0];
                out.iter()
                    .rposition(|inf| {
                        matches!(inf, InFlight::Done { fi: i, batch: b }
                            if *i == fi && *b == batch)
                    })
                    .and_then(|pos| out.remove(pos))
            }),
            ExorPayload::Data { .. } | ExorPayload::Gossip { .. } => None,
        };
        if let Some(inf) = removed {
            self.requeue_unicast(node, inf);
            ctx.mark_backlogged(node);
        }
    }

    fn on_timer(&mut self, node: NodeId, token: u64, ctx: &mut Ctx<'_>) {
        let (fi, gen) = Self::untoken(token);
        let cfg = self.cfg;
        let Some(f) = self.flows.get_mut(fi) else {
            return;
        };
        let Some(my_rank) = f.rank_of[node.0] else {
            return;
        };
        if f.is_done(&cfg) {
            return;
        }
        let n_ranks = f.n_ranks();
        let ns = &mut f.nodes[node.0];
        if ns.timer_gen != gen || ns.in_turn {
            return; // stale, or we are the ones transmitting
        }
        // Silence: advance the schedule locally.
        ns.speaker = Self::next_rank(n_ranks, ns.speaker);
        if ns.speaker == my_rank {
            Self::begin_turn(f, &cfg, node, my_rank, ctx);
        }
        Self::arm_timer(&cfg, fi, &mut f.nodes[node.0], node, ctx);
    }
}

impl ExorAgent {
    /// Destination-side completion check: on a full batch, queue the
    /// reliable `BatchDone` and credit progress.
    fn dst_check_complete(f: &mut ExorFlow, cfg: &ExorConfig, ctx: &mut Ctx<'_>) {
        let dstid = f.dst;
        let k = f.k_of(cfg, f.nodes[dstid.0].batch);
        let ns = &mut f.nodes[dstid.0];
        if ns.holds[..k].iter().filter(|&&h| h).count() < k {
            return;
        }
        let batch = ns.batch;
        if f.dst_complete_through.is_some_and(|b| b >= batch) {
            return; // already credited and BatchDone queued
        }
        f.dst_complete_through = Some(batch);
        let ns = &mut f.nodes[dstid.0];
        ns.done_queue.push_back(batch);
        f.progress.delivered += k;
        f.progress.completed_batches += 1;
        let total_batches = f.n_batches(cfg);
        if batch + 1 == total_batches {
            f.progress.completed_at = Some(ctx.now());
        }
        ctx.mark_backlogged(dstid);
    }

    /// Source advances to `next` batch and opens it with a fresh burst.
    fn advance_src_batch(f: &mut ExorFlow, cfg: &ExorConfig, next: u32, ctx: &mut Ctx<'_>) {
        f.src_batch = next;
        if f.is_done(cfg) {
            f.progress.done = true;
            return;
        }
        let k = f.k_of(cfg, next);
        let src_rank = (f.plan.order.len() - 1) as u8;
        let srcid = f.src;
        let ns = &mut f.nodes[srcid.0];
        ns.reset_for(next, k, src_rank);
        ns.holds = vec![true; k];
        ns.map = vec![src_rank; k];
        ns.speaker = src_rank;
        Self::begin_turn(f, cfg, srcid, src_rank, ctx);
    }

    /// Starts flow `index`'s first batch (call once, then kick the source
    /// on the simulator).
    pub fn start(&mut self, index: usize) {
        let cfg = self.cfg;
        let f = &mut self.flows[index];
        let srcid = f.src;
        let k = f.k_of(&cfg, 0);
        let ns = &mut f.nodes[srcid.0];
        ns.turn_queue = (0..k as u32).collect();
        ns.in_turn = true;
    }
}

impl mesh_sim::FlowAgent for ExorAgent {
    fn flows_done(&self) -> bool {
        self.all_done()
    }

    fn flow_progress(&self, index: usize) -> mesh_sim::FlowProgressView {
        let p = self.progress(index);
        mesh_sim::FlowProgressView {
            delivered: p.delivered,
            completed_at: p.completed_at,
            done: p.done,
        }
    }

    fn supports_dynamic_flows(&self) -> bool {
        true
    }

    fn add_flow(&mut self, desc: &mesh_sim::FlowDesc) -> usize {
        assert_eq!(
            desc.dsts.len(),
            1,
            "ExOR's scheduler is strictly unicast; multicast arrivals are unsupported"
        );
        let id = self.flows.iter().map(|f| f.id).max().unwrap_or(0) + 1;
        let fi = ExorAgent::add_flow(self, id, desc.src, desc.dsts[0], desc.packets);
        self.start(fi);
        fi
    }

    fn end_flow(&mut self, index: usize) {
        self.halt_flow(index);
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use mesh_sim::{SimConfig, Simulator, SEC};
    use mesh_topology::generate;

    fn run(
        topo: Topology,
        cfg: ExorConfig,
        src: usize,
        dst: usize,
        total: usize,
        seed: u64,
    ) -> (Simulator<ExorAgent>, usize) {
        let mut agent = ExorAgent::new(topo.clone(), cfg);
        let fi = agent.add_flow(1, NodeId(src), NodeId(dst), total);
        agent.start(fi);
        let mut sim = Simulator::new(topo, SimConfig::default(), agent, seed);
        sim.kick(NodeId(src));
        sim.run_until(900 * SEC, |a: &ExorAgent| a.all_done());
        (sim, fi)
    }

    #[test]
    fn one_hop_batch_completes() {
        let topo = generate::line(1, 0.8, 0.0, 20.0);
        let (sim, fi) = run(topo, ExorConfig::default(), 0, 1, 32, 1);
        let p = sim.agent.progress(fi);
        assert!(p.done, "flow did not finish");
        assert_eq!(p.delivered, 32);
    }

    #[test]
    fn relay_line_completes() {
        let topo = generate::line(3, 0.7, 0.3, 25.0);
        let (sim, fi) = run(topo, ExorConfig::default(), 0, 3, 32, 2);
        let p = sim.agent.progress(fi);
        assert!(p.done, "relay flow stuck");
        assert_eq!(p.delivered, 32);
    }

    #[test]
    fn multiple_batches_complete() {
        let topo = generate::line(2, 0.8, 0.2, 25.0);
        let (sim, fi) = run(topo, ExorConfig::default(), 0, 2, 96, 3);
        let p = sim.agent.progress(fi);
        assert!(p.done);
        assert_eq!(p.delivered, 96);
        assert_eq!(p.completed_batches, 3);
    }

    #[test]
    fn testbed_transfer_completes() {
        let topo = generate::testbed(1);
        let (sim, fi) = run(topo, ExorConfig::default(), 0, 19, 64, 4);
        let p = sim.agent.progress(fi);
        assert!(p.done, "testbed ExOR flow stuck");
        assert_eq!(p.delivered, 64);
    }

    #[test]
    fn schedule_prevents_concurrent_data() {
        // A single ExOR flow on a long line should show almost no
        // concurrent airtime — the scheduler serializes transmissions.
        let topo = generate::line(4, 0.85, 0.2, 30.0);
        let (sim, fi) = run(topo, ExorConfig::default(), 0, 4, 64, 5);
        assert!(sim.agent.progress(fi).done);
        let concurrent = sim.stats.concurrent_airtime as f64;
        let total = sim.stats.total_airtime() as f64;
        assert!(
            concurrent / total < 0.12,
            "ExOR overlapped {:.1}% of airtime — schedule broken",
            100.0 * concurrent / total
        );
    }

    #[test]
    fn small_batches_pay_more_overhead() {
        // Fig 4-7's mechanism: with K=8 the per-batch control traffic
        // (gossip turns, BatchDone trips) amortizes over fewer packets.
        let topo = generate::line(2, 0.8, 0.2, 25.0);
        let (sim8, fi8) = run(
            topo.clone(),
            ExorConfig {
                k: 8,
                ..ExorConfig::default()
            },
            0,
            2,
            64,
            6,
        );
        let (sim64, fi64) = run(
            topo,
            ExorConfig {
                k: 64,
                ..ExorConfig::default()
            },
            0,
            2,
            64,
            6,
        );
        let t8 = sim8.agent.progress(fi8).completed_at.unwrap();
        let t64 = sim64.agent.progress(fi64).completed_at.unwrap();
        assert!(
            t8 > t64,
            "K=8 ({t8} µs) should be slower than K=64 ({t64} µs)"
        );
    }
}
