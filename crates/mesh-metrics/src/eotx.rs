//! The EOTX metric (thesis §5.4–§5.5).
//!
//! EOTX of a node is "the minimum expected number of opportunistic
//! transmissions that need to be performed in the network in order to
//! deliver a single packet from source to sink", under the forwarding rule
//! *of all successful recipients, the one with the lowest EOTX forwards*.
//! Theorem 1 + Proposition 4 show it equals the optimal value of the
//! minimum-cost flow LP, and the closed form (5.15) is
//!
//! ```text
//! d(s) = (1 + Σ_{i<s} (q_i − q_{i−1})·d(i)) / q_{s−1}
//! ```
//!
//! where nodes are sorted by ascending cost and `q_k` is the probability
//! that at least one of the `k` cheapest nodes receives `s`'s transmission.
//!
//! Two solvers untangle the recursion:
//!
//! * [`EotxTable::compute`] — Algorithm 5, the Dijkstra-style pass for
//!   independent per-receiver losses, `O(n²)`.
//! * [`EotxTable::compute_bellman_ford`] — Algorithms 3–4, the
//!   Bellman–Ford-style relaxation (the shape suited to distributed
//!   implementations), kept as an independent implementation to
//!   cross-check the Dijkstra result.
//!
//! The admission test in `Recompute` follows the water-filling optimality
//! condition of Proposition 2: candidate `k` is admitted as a forwarder
//! exactly while `d(k) < T/q_{admitted so far}` — i.e. while it is cheaper
//! than the cost we would settle for without it.

// xtask: allow(panic_path, file) -- EOTX distance/forwarder matrices are square in the node count fixed at build; every loop index ranges over 0..n of those same matrices.

use crate::{EPS, INF};
use mesh_topology::{NodeId, Topology};

/// Per-node EOTX distances to one destination.
#[derive(Clone, Debug)]
pub struct EotxTable {
    dst: NodeId,
    /// `dist[i]` = EOTX from node i to the destination.
    dist: Vec<f64>,
    /// `reach[i]` = probability that at least one *strictly cheaper* node
    /// receives a transmission from `i` (the `q_{i,(i−1)}` of §5.6.1;
    /// `z_i = L_i / reach[i]` for unit load).
    reach: Vec<f64>,
}

impl EotxTable {
    /// Algorithm 5: Dijkstra-fashion EOTX for independent losses.
    ///
    /// Extract-min runs on a lazy-deletion binary heap and relaxation
    /// walks the CSR in-row of the closed node, so the cost is
    /// O((n + E) log n) over the subgraph that can reach `dst` rather
    /// than the historical O(n²) scans. The closure order, the relaxation
    /// order (ascending in-neighbor id), and therefore every float
    /// operation are identical to the linear-scan implementation:
    /// estimates only decrease under relaxation, stale heap entries are
    /// skipped by an exact value comparison, and ties pop in ascending
    /// node id exactly as the scan's `dist[i] < dist[b]` kept the lowest
    /// index.
    pub fn compute(topo: &Topology, dst: NodeId) -> Self {
        let n = topo.n();
        assert!(dst.0 < n, "destination out of range");
        let mut dist = vec![INF; n];
        // T(i): accumulated 1 + Σ (q_k − q_{k−1}) d(k) over closed nodes k.
        let mut t_acc = vec![1.0; n];
        // P(i): probability NO closed node receives i's transmission.
        let mut p_none = vec![1.0; n];
        let mut closed = vec![false; n];
        dist[dst.0] = 0.0;

        // Min-heap on (estimate, id); reversed for BinaryHeap.
        #[derive(PartialEq)]
        struct Entry(f64, usize);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other
                    .0
                    .total_cmp(&self.0)
                    .then_with(|| other.1.cmp(&self.1))
            }
        }

        let mut heap = std::collections::BinaryHeap::new();
        heap.push(Entry(0.0, dst.0));
        while let Some(Entry(d, k)) = heap.pop() {
            // Lazy deletion: entries left behind by later relaxations
            // carry an out-of-date (always larger) estimate.
            if closed[k] || d != dist[k] {
                continue;
            }
            closed[k] = true;
            // Relax every open node i that can reach k (ascending id).
            for (i, p_ik) in topo.neighbors_in(NodeId(k)) {
                let i = i.0;
                if closed[i] {
                    continue;
                }
                t_acc[i] += p_ik * p_none[i] * dist[k];
                p_none[i] *= 1.0 - p_ik;
                dist[i] = t_acc[i] / (1.0 - p_none[i]);
                heap.push(Entry(dist[i], i));
            }
        }

        let reach = p_none.iter().map(|p| 1.0 - p).collect();
        EotxTable { dst, dist, reach }
    }

    /// Algorithms 3–4: Bellman–Ford-fashion EOTX. Independent
    /// implementation used to cross-validate [`Self::compute`].
    pub fn compute_bellman_ford(topo: &Topology, dst: NodeId) -> Self {
        let n = topo.n();
        assert!(dst.0 < n, "destination out of range");
        let mut dist = vec![INF; n];
        dist[dst.0] = 0.0;

        for _ in 0..n {
            // Sort nodes by current estimate (Algorithm 4's "sort nodes in
            // order"); ties broken by id.
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| dist[a].total_cmp(&dist[b]).then(a.cmp(&b)));
            let mut new_dist = dist.clone();
            #[allow(clippy::needless_range_loop)] // i is also compared against dst
            for i in 0..n {
                if i == dst.0 {
                    continue;
                }
                new_dist[i] = recompute(topo, i, &order, &dist);
            }
            dist = new_dist;
        }

        // Recover reach from the final order.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| dist[a].total_cmp(&dist[b]).then(a.cmp(&b)));
        let mut reach = vec![0.0; n];
        for i in 0..n {
            let mut p_none = 1.0;
            for &k in &order {
                if (dist[k], k) >= (dist[i], i) {
                    break;
                }
                p_none *= 1.0 - topo.delivery(NodeId(i), NodeId(k));
            }
            reach[i] = 1.0 - p_none;
        }
        reach[dst.0] = 0.0;
        EotxTable { dst, dist, reach }
    }

    /// The destination this table routes toward.
    pub fn destination(&self) -> NodeId {
        self.dst
    }

    /// EOTX from `i` to the destination (∞ when unreachable).
    #[inline]
    pub fn dist(&self, i: NodeId) -> f64 {
        self.dist[i.0]
    }

    /// All distances, indexed by node.
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// `q_{i,(i−1)}`: probability that some strictly cheaper node hears a
    /// transmission from `i`.
    #[inline]
    pub fn reach(&self, i: NodeId) -> f64 {
        self.reach[i.0]
    }

    /// Strict "closer to destination" order with id tie-breaking.
    pub fn closer(&self, a: NodeId, b: NodeId) -> bool {
        (self.dist[a.0], a.0) < (self.dist[b.0], b.0)
    }
}

/// Algorithm 3 (`Recompute(i)`) with the water-filling admission test:
/// walk candidates in ascending cost, admitting `k` while
/// `d(k) < T / q_admitted`.
fn recompute(topo: &Topology, i: usize, order: &[usize], dist: &[f64]) -> f64 {
    let mut t = 1.0;
    let mut q_prev = 0.0;
    for &k in order {
        if k == i {
            continue;
        }
        if dist[k].is_infinite() {
            break;
        }
        // Would-be cost with the current admitted set.
        let current = if q_prev > 0.0 { t / q_prev } else { INF };
        if dist[k] + EPS >= current {
            break; // k (and everyone after) is too expensive to help
        }
        let p_ik = topo.delivery(NodeId(i), NodeId(k));
        if p_ik <= 0.0 {
            continue;
        }
        let q_new = 1.0 - (1.0 - q_prev) * (1.0 - p_ik);
        t += (q_new - q_prev) * dist[k];
        q_prev = q_new;
    }
    if q_prev > 0.0 {
        t / q_prev
    } else {
        INF
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use crate::etx::{EtxTable, LinkCost};
    use mesh_topology::generate;

    fn assert_close(a: f64, b: f64, tol: f64, msg: &str) {
        if a.is_infinite() && b.is_infinite() {
            return;
        }
        assert!((a - b).abs() <= tol, "{msg}: {a} vs {b}");
    }

    #[test]
    fn motivating_example_eotx() {
        // src can reach dst (0.49) and R (1.0). Water filling:
        // d(src) = (1 + 0.49·0 + 0.51·1) / 1 = 1.51.
        let t = generate::motivating();
        let table = EotxTable::compute(&t, NodeId(2));
        assert_close(table.dist(NodeId(1)), 1.0, 1e-9, "R");
        assert_close(table.dist(NodeId(0)), 1.51, 1e-9, "src");
        assert_close(table.reach(NodeId(0)), 1.0, 1e-9, "src reach");
    }

    #[test]
    fn single_link_eotx_is_inverse_probability() {
        let t = mesh_topology::Topology::from_matrix("pair", vec![vec![0.0, 0.25], vec![0.0, 0.0]]);
        let table = EotxTable::compute(&t, NodeId(1));
        assert_close(table.dist(NodeId(0)), 4.0, 1e-9, "1/p");
    }

    #[test]
    fn fig_5_1_diamond_values() {
        // Fig 5-1: through B with k forwarders, total EOTX from src is
        // 1/(1−(1−p)^k) + 2 when that beats A's 1/p + 1.
        let k = 10;
        let p = 0.1;
        let t = generate::diamond(k, p);
        let (src, a, b, _cs, dst) = generate::diamond_roles(k);
        let table = EotxTable::compute(&t, dst);
        assert_close(table.dist(a), 1.0, 1e-9, "A");
        let expect_b = 1.0 / (1.0 - (1.0 - p).powi(k as i32)) + 1.0;
        assert_close(table.dist(b), expect_b, 1e-9, "B");
        // src reaches B perfectly and A with p; B (cost ≈ 2.53 for k=10,
        // p=0.1) is cheaper than A's path cost seen from src.
        let d_src = table.dist(src);
        assert!(d_src < 1.0 / p + 1.0, "EOTX must beat the A-only path");
    }

    #[test]
    fn eotx_never_exceeds_etx() {
        // Opportunism can only help: EOTX ≤ ETX everywhere.
        for seed in 0..4u64 {
            let t = generate::testbed(seed);
            for dst in [NodeId(0), NodeId(7), NodeId(19)] {
                let etx = EtxTable::compute(&t, dst, LinkCost::Forward);
                let eotx = EotxTable::compute(&t, dst);
                for i in t.nodes() {
                    assert!(
                        eotx.dist(i) <= etx.dist(i) + 1e-6,
                        "EOTX > ETX at {i} (seed {seed}, dst {dst}): {} vs {}",
                        eotx.dist(i),
                        etx.dist(i)
                    );
                }
            }
        }
    }

    #[test]
    fn dijkstra_and_bellman_ford_agree() {
        for seed in 0..4u64 {
            let t = generate::testbed(seed);
            for dst in [NodeId(0), NodeId(10)] {
                let d = EotxTable::compute(&t, dst);
                let bf = EotxTable::compute_bellman_ford(&t, dst);
                for i in t.nodes() {
                    assert_close(
                        d.dist(i),
                        bf.dist(i),
                        1e-6,
                        &format!("node {i} seed {seed}"),
                    );
                }
            }
        }
    }

    #[test]
    fn unreachable_nodes_are_infinite() {
        let t = mesh_topology::Topology::from_matrix(
            "islands",
            vec![
                vec![0.0, 0.9, 0.0],
                vec![0.9, 0.0, 0.0],
                vec![0.0, 0.0, 0.0],
            ],
        );
        let table = EotxTable::compute(&t, NodeId(0));
        assert!(table.dist(NodeId(2)).is_infinite());
        assert!(table.dist(NodeId(1)).is_finite());
    }

    #[test]
    fn destination_is_zero() {
        let t = generate::testbed(0);
        let table = EotxTable::compute(&t, NodeId(3));
        assert_eq!(table.dist(NodeId(3)), 0.0);
        assert_eq!(table.reach(NodeId(3)), 0.0);
    }

    #[test]
    fn more_forwarders_reduce_eotx() {
        // Adding an extra relay can only lower (or keep) the source's EOTX.
        let two = mesh_topology::Topology::from_matrix(
            "sparse",
            vec![
                vec![0.0, 0.5, 0.3],
                vec![0.0, 0.0, 0.9],
                vec![0.0, 0.0, 0.0],
            ],
        );
        let three = mesh_topology::Topology::from_matrix(
            "dense",
            vec![
                vec![0.0, 0.5, 0.5, 0.3],
                vec![0.0, 0.0, 0.0, 0.9],
                vec![0.0, 0.0, 0.0, 0.9],
                vec![0.0, 0.0, 0.0, 0.0],
            ],
        );
        let d2 = EotxTable::compute(&two, NodeId(2)).dist(NodeId(0));
        let d3 = EotxTable::compute(&three, NodeId(3)).dist(NodeId(0));
        assert!(d3 < d2 + 1e-9, "extra forwarder made things worse");
    }
}
