//! The ETX-order vs EOTX-order cost gap (§5.7, Proposition 6).
//!
//! MORE and ExOR order forwarders by ETX because both pre-date EOTX. The
//! gap for a source–destination pair is the ratio of total transmissions
//! (Σ z_i from Algorithm 1) when the ordering comes from ETX versus EOTX.
//! Fig 5-1 shows a contrived diamond where the gap grows without bound
//! (→ k as p → 0); §5.7 measures the testbed and finds >40 % of pairs
//! unaffected and a median affected gap of ≈ 0.2 %.

use crate::credits::{ForwarderPlan, PlanConfig};
use crate::eotx::EotxTable;
use crate::etx::{EtxTable, LinkCost};
use mesh_topology::{NodeId, Topology};

/// Total expected transmissions for a unit flow when forwarders are
/// ordered by the given metric (no pruning — the theory-side cost).
pub fn total_cost_under_metric(topo: &Topology, src: NodeId, dst: NodeId, metric: &[f64]) -> f64 {
    ForwarderPlan::compute(topo, src, dst, metric, &PlanConfig::unpruned()).total_cost()
}

/// The §5.7 gap for one pair: `cost(ETX order) / cost(EOTX order)`.
///
/// ≥ 1 up to floating error; 1.0 means the orderings agree in effect.
pub fn pair_gap(topo: &Topology, src: NodeId, dst: NodeId) -> f64 {
    let etx = EtxTable::compute(topo, dst, LinkCost::Forward);
    let eotx = EotxTable::compute(topo, dst);
    let c_etx = total_cost_under_metric(topo, src, dst, etx.distances());
    let c_eotx = total_cost_under_metric(topo, src, dst, eotx.distances());
    c_etx / c_eotx
}

/// Aggregate gap statistics over all ordered reachable pairs (§5.7).
#[derive(Clone, Copy, Debug, Default)]
pub struct GapStats {
    /// Ordered pairs examined.
    pub pairs: usize,
    /// Fraction with gap ≤ `tolerance` (order change has no effect).
    pub unaffected_fraction: f64,
    /// Median gap − 1 among affected pairs (the paper reports 0.2 %).
    pub median_affected_excess: f64,
    /// Largest gap seen.
    pub max_gap: f64,
}

/// Computes [`GapStats`] over every ordered pair of distinct nodes.
pub fn testbed_gap_stats(topo: &Topology, tolerance: f64) -> GapStats {
    let mut gaps = Vec::new();
    for s in topo.nodes() {
        for d in topo.nodes() {
            if s == d {
                continue;
            }
            let etx = EtxTable::compute(topo, d, LinkCost::Forward);
            if !etx.dist(s).is_finite() {
                continue;
            }
            gaps.push(pair_gap(topo, s, d));
        }
    }
    stats_from_gaps(&gaps, tolerance)
}

/// Aggregates raw per-pair gaps. A NaN gap (degenerate pair) counts
/// toward `pairs` but is neither unaffected nor affected, and `fold`
/// with `f64::max` ignores it for `max_gap`.
fn stats_from_gaps(gaps: &[f64], tolerance: f64) -> GapStats {
    let pairs = gaps.len();
    if pairs == 0 {
        return GapStats::default();
    }
    let unaffected = gaps.iter().filter(|&&g| g <= 1.0 + tolerance).count();
    let mut affected: Vec<f64> = gaps
        .iter()
        .copied()
        .filter(|&g| g > 1.0 + tolerance)
        .collect();
    affected.sort_by(f64::total_cmp);
    let median_affected_excess = if affected.is_empty() {
        0.0
    } else {
        // xtask: allow(panic_path) -- guarded by the is_empty() branch above; len()/2 < len()
        affected[affected.len() / 2] - 1.0
    };
    let max_gap = gaps.iter().copied().fold(1.0, f64::max);
    GapStats {
        pairs,
        unaffected_fraction: unaffected as f64 / pairs as f64,
        median_affected_excess,
        max_gap,
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use mesh_topology::generate;

    #[test]
    fn fig_5_1_gap_approaches_k() {
        // ETX-order cost is the A-only path, 1/p + 1. The EOTX-order
        // optimum water-fills over A (heard w.p. p, remaining cost 1) and
        // B (heard always, remaining cost d_B = 1/(1−(1−p)^k) + 1):
        //   c_eotx = 1 + p·1 + (1−p)·d_B,
        // and the gap (1/p + 1)/c_eotx → k as p → 0 (Proposition 6).
        let k = 8;
        let (src, _a, _b, _cs, dst) = generate::diamond_roles(k);
        let mut prev = 0.0;
        for &p in &[0.2, 0.1, 0.05, 0.01] {
            let t = generate::diamond(k, p);
            let g = pair_gap(&t, src, dst);
            let d_b = 1.0 / (1.0 - (1.0 - p).powi(k as i32)) + 1.0;
            let c_eotx = 1.0 + p * 1.0 + (1.0 - p) * d_b;
            let analytic = (1.0 / p + 1.0) / c_eotx;
            assert!(
                (g - analytic).abs() < 1e-6,
                "p={p}: computed {g} vs analytic {analytic}"
            );
            assert!(g > prev, "gap must grow as p shrinks");
            prev = g;
        }
        // At p = 0.01 the gap is within 20% of its limit k.
        assert!(prev > 0.8 * k as f64, "gap {prev} far from limit {k}");
    }

    #[test]
    fn gap_is_at_least_one() {
        let t = generate::testbed(0);
        for (s, d) in [(0usize, 19usize), (5, 9), (13, 2)] {
            let g = pair_gap(&t, NodeId(s), NodeId(d));
            assert!(g >= 1.0 - 1e-6, "gap {g} below 1 for {s}->{d}");
        }
    }

    #[test]
    fn testbed_gaps_are_small() {
        // §5.7's finding on the real testbed: a large fraction of pairs is
        // unaffected and the typical affected gap is tiny.
        let t = generate::testbed(0);
        let stats = testbed_gap_stats(&t, 1e-9);
        assert!(stats.pairs > 300, "expected ~380 ordered pairs");
        assert!(
            stats.unaffected_fraction > 0.25,
            "unaffected fraction {}",
            stats.unaffected_fraction
        );
        assert!(
            stats.median_affected_excess < 0.05,
            "median affected excess {}",
            stats.median_affected_excess
        );
        assert!(stats.max_gap < 1.5, "max gap {}", stats.max_gap);
    }

    #[test]
    fn nan_gap_is_neither_affected_nor_a_panic() {
        // total_cmp regression: affected.sort_by(partial_cmp().unwrap())
        // used to panic when a NaN gap slipped in.
        let s = stats_from_gaps(&[1.0, 1.5, f64::NAN, 2.0], 0.05);
        assert_eq!(s.pairs, 4);
        assert!((s.unaffected_fraction - 0.25).abs() < 1e-12);
        assert!((s.median_affected_excess - 1.0).abs() < 1e-12);
        assert_eq!(s.max_gap, 2.0);
    }
}
