//! Jain's fairness index over per-flow allocations.
//!
//! `J(x) = (Σ xᵢ)² / (n · Σ xᵢ²)` — 1.0 when every flow gets the same
//! share, `1/n` when one flow starves the rest (Jain, Chiu & Hawe 1984).
//! Used by the queueing subsystem to compare disciplines under overload:
//! DropTail lets aggressive flows lock out the queue while CHOKe's
//! flow-matched drops push the index back toward 1.

use crate::EPS;

/// Jain's fairness index of `allocations` (typically per-flow
/// throughputs in packets per second).
///
/// Total functions only: the edge cases that would produce `0/0` are
/// pinned to well-defined values instead of `NaN`, so downstream
/// aggregation (means over sweep cells, CSV plotting) never poisons.
///
/// * An empty allocation set is vacuously fair: `1.0`.
/// * All-zero allocations (every flow starved equally) are fair: `1.0`.
/// * Non-finite entries are ignored; negative entries clamp to `0.0`
///   (throughput cannot be negative — a negative input is a measurement
///   bug, not a starved flow that should drag the index down twice).
///
/// ```
/// use mesh_metrics::fairness::jain;
///
/// assert_eq!(jain(&[]), 1.0);
/// assert_eq!(jain(&[0.0, 0.0]), 1.0);
/// assert_eq!(jain(&[5.0, 5.0, 5.0]), 1.0);
/// // One of four flows hogs everything: J = 1/4.
/// assert!((jain(&[9.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
/// ```
pub fn jain(allocations: &[f64]) -> f64 {
    let xs = allocations
        .iter()
        .filter(|x| x.is_finite())
        .map(|&x| x.max(0.0));
    let (n, sum, sum_sq) = xs.fold((0usize, 0.0f64, 0.0f64), |(n, s, sq), x| {
        (n + 1, s + x, sq + x * x)
    });
    if n == 0 || sum_sq <= EPS {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

#[cfg(test)]
mod test {
    use super::*;

    #[test]
    fn equal_shares_are_perfectly_fair() {
        assert_eq!(jain(&[3.0]), 1.0);
        assert!((jain(&[7.5, 7.5, 7.5, 7.5]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_hog_scores_one_over_n() {
        for n in 2..=8usize {
            let mut v = vec![0.0; n];
            v[0] = 42.0;
            assert!(
                (jain(&v) - 1.0 / n as f64).abs() < 1e-12,
                "n={n}: {}",
                jain(&v)
            );
        }
    }

    #[test]
    fn index_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 20.0, 30.0];
        assert!((jain(&a) - jain(&b)).abs() < 1e-12);
    }

    #[test]
    fn empty_and_all_zero_flow_sets_are_fair_not_nan() {
        // The 0/0 corners: a run where no flow moved anything (deep
        // overload, tiny deadline) must not emit NaN into the records.
        assert_eq!(jain(&[]), 1.0);
        assert_eq!(jain(&[0.0]), 1.0);
        assert_eq!(jain(&[0.0, 0.0, 0.0]), 1.0);
        assert!(jain(&[0.0, 0.0]).is_finite());
    }

    #[test]
    fn hostile_inputs_never_poison() {
        // Non-finite entries are measurement artifacts, not allocations.
        assert!(jain(&[f64::NAN, 1.0, 1.0]).is_finite());
        assert_eq!(jain(&[f64::NAN, 1.0, 1.0]), 1.0);
        assert_eq!(jain(&[f64::INFINITY, f64::NEG_INFINITY]), 1.0);
        assert!(jain(&[f64::NAN]).is_finite());
        // Negatives clamp to zero rather than inflating (Σx)² weirdly.
        let clamped = jain(&[-5.0, 10.0]);
        assert!((clamped - 0.5).abs() < 1e-12, "{clamped}");
    }

    #[test]
    fn partial_starvation_lands_between_the_extremes() {
        let j = jain(&[10.0, 10.0, 1.0, 1.0]);
        assert!(j > 0.25 && j < 1.0, "{j}");
    }
}
