//! The ETX metric (De Couto et al.) and best-path extraction.
//!
//! ETX of a link is the expected number of transmissions to get a packet
//! across it: `1/p` for delivery probability `p`, or `1/(p_fwd · p_rev)`
//! when the 802.11 ACK's reverse-path loss is accounted for (§2.1.1: "ETX
//! accounts for the probability that the transmission is successfully
//! decoded, but must be reattempted because the 802.11 ACK is lost").
//! ETX of a path is the sum over its hops; the table holds each node's
//! ETX *distance to the destination* over the best path, which is what
//! MORE and ExOR use to order forwarders ("closer to destination" =
//! smaller ETX, Table 3.1).

// xtask: allow(panic_path, file) -- loss/distance matrices are square in the node count fixed at build.

use crate::{EPS, INF};
use mesh_topology::{NodeId, Topology};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// How link ETX is derived from delivery probabilities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LinkCost {
    /// `1/p_fwd` — the form used throughout the thesis' analysis.
    #[default]
    Forward,
    /// `1/(p_fwd · p_rev)` — data and MAC-ACK must both get through.
    ForwardReverse,
}

/// Per-node ETX distances to one destination, plus best-path successors.
#[derive(Clone, Debug)]
pub struct EtxTable {
    dst: NodeId,
    /// `dist[i]` = ETX from node i to `dst` along the best path.
    dist: Vec<f64>,
    /// `next[i]` = the nexthop on the best path, `None` at `dst` or when
    /// unreachable.
    next: Vec<Option<NodeId>>,
}

impl EtxTable {
    /// Computes ETX distances from every node to `dst` by Dijkstra.
    pub fn compute(topo: &Topology, dst: NodeId, cost: LinkCost) -> Self {
        let n = topo.n();
        assert!(dst.0 < n, "destination out of range");
        let mut dist = vec![INF; n];
        let mut next: Vec<Option<NodeId>> = vec![None; n];
        dist[dst.0] = 0.0;

        // Max-heap on reversed ordering -> min-heap on distance.
        #[derive(PartialEq)]
        struct Entry(f64, usize);
        impl Eq for Entry {}
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> Ordering {
                // Reverse: smallest distance first; tie-break on node id for
                // determinism.
                other
                    .0
                    .total_cmp(&self.0)
                    .then_with(|| other.1.cmp(&self.1))
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(Entry(0.0, dst.0));
        let mut closed = vec![false; n];
        while let Some(Entry(d, u)) = heap.pop() {
            if closed[u] {
                continue;
            }
            closed[u] = true;
            // Relax incoming links v -> u: transmitting from v reaches u.
            // The CSR in-row visits exactly the nodes with `p_vu > 0` in
            // ascending id order — the same candidates, in the same order,
            // as the historical 0..n scan.
            for (v, p_fwd) in topo.neighbors_in(NodeId(u)) {
                let v = v.0;
                if closed[v] {
                    continue;
                }
                let link = match cost {
                    LinkCost::Forward => 1.0 / p_fwd,
                    LinkCost::ForwardReverse => {
                        let p_rev = topo.delivery(NodeId(u), NodeId(v));
                        if p_rev <= 0.0 {
                            continue;
                        }
                        1.0 / (p_fwd * p_rev)
                    }
                };
                let cand = d + link;
                if cand + EPS < dist[v] {
                    dist[v] = cand;
                    next[v] = Some(NodeId(u));
                    heap.push(Entry(cand, v));
                }
            }
        }
        EtxTable { dst, dist, next }
    }

    /// The destination this table routes toward.
    pub fn destination(&self) -> NodeId {
        self.dst
    }

    /// ETX distance from `i` to the destination (∞ when unreachable).
    #[inline]
    pub fn dist(&self, i: NodeId) -> f64 {
        self.dist[i.0]
    }

    /// All distances, indexed by node.
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Best-path nexthop from `i`.
    pub fn next_hop(&self, i: NodeId) -> Option<NodeId> {
        self.next[i.0]
    }

    /// The full best path `src → … → dst`, or `None` if unreachable.
    pub fn path_from(&self, src: NodeId) -> Option<Vec<NodeId>> {
        if self.dist[src.0].is_infinite() {
            return None;
        }
        let mut path = vec![src];
        let mut cur = src;
        while cur != self.dst {
            let nh = self.next[cur.0]?;
            path.push(nh);
            cur = nh;
            assert!(path.len() <= self.dist.len(), "routing loop in ETX table");
        }
        Some(path)
    }

    /// "Closer to destination" in the Table 3.1 sense, with deterministic
    /// id tie-breaking so orderings are strict.
    pub fn closer(&self, a: NodeId, b: NodeId) -> bool {
        (self.dist[a.0], a.0) < (self.dist[b.0], b.0)
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use mesh_topology::generate;

    #[test]
    fn motivating_example_etx() {
        // §2.1.1: path src→R→dst has ETX 2; direct link 1/0.49 = 2.04.
        let t = generate::motivating();
        let table = EtxTable::compute(&t, NodeId(2), LinkCost::Forward);
        assert!((table.dist(NodeId(0)) - 2.0).abs() < 1e-9);
        assert!((table.dist(NodeId(1)) - 1.0).abs() < 1e-9);
        assert_eq!(table.dist(NodeId(2)), 0.0);
        assert_eq!(
            table.path_from(NodeId(0)).unwrap(),
            vec![NodeId(0), NodeId(1), NodeId(2)]
        );
    }

    #[test]
    fn prefers_lossless_two_hop_over_lossy_direct() {
        // ETX picks two perfect hops (2.0) over one 0.49 link (2.04).
        let t = generate::motivating();
        let table = EtxTable::compute(&t, NodeId(2), LinkCost::Forward);
        assert_eq!(table.next_hop(NodeId(0)), Some(NodeId(1)));
    }

    #[test]
    fn direct_wins_when_better() {
        let t = mesh_topology::Topology::from_matrix(
            "direct",
            vec![
                vec![0.0, 1.0, 0.8],
                vec![0.0, 0.0, 1.0],
                vec![0.0, 0.0, 0.0],
            ],
        );
        let table = EtxTable::compute(&t, NodeId(2), LinkCost::Forward);
        // Direct: 1/0.8 = 1.25 < 2.0 two-hop.
        assert!((table.dist(NodeId(0)) - 1.25).abs() < 1e-9);
        assert_eq!(
            table.path_from(NodeId(0)).unwrap(),
            vec![NodeId(0), NodeId(2)]
        );
    }

    #[test]
    fn unreachable_is_infinite() {
        let t = mesh_topology::Topology::from_matrix("split", vec![vec![0.0, 0.0], vec![0.0, 0.0]]);
        let table = EtxTable::compute(&t, NodeId(1), LinkCost::Forward);
        assert!(table.dist(NodeId(0)).is_infinite());
        assert!(table.path_from(NodeId(0)).is_none());
    }

    #[test]
    fn forward_reverse_accounts_for_ack_loss() {
        // Symmetric 0.8 link: fwd-only ETX = 1.25, fwd·rev = 1/(0.64) ≈ 1.5625.
        let t = mesh_topology::Topology::from_matrix("sym", vec![vec![0.0, 0.8], vec![0.8, 0.0]]);
        let f = EtxTable::compute(&t, NodeId(1), LinkCost::Forward);
        let fr = EtxTable::compute(&t, NodeId(1), LinkCost::ForwardReverse);
        assert!((f.dist(NodeId(0)) - 1.25).abs() < 1e-9);
        assert!((fr.dist(NodeId(0)) - 1.5625).abs() < 1e-9);
    }

    #[test]
    fn asymmetric_link_unusable_with_ack() {
        // Forward link exists but no reverse: unusable under ForwardReverse.
        let t =
            mesh_topology::Topology::from_matrix("oneway", vec![vec![0.0, 0.9], vec![0.0, 0.0]]);
        let fr = EtxTable::compute(&t, NodeId(1), LinkCost::ForwardReverse);
        assert!(fr.dist(NodeId(0)).is_infinite());
    }

    #[test]
    fn line_distances_accumulate() {
        let t = generate::line(4, 0.5, 0.0, 30.0);
        let table = EtxTable::compute(&t, NodeId(4), LinkCost::Forward);
        for i in 0..=4usize {
            let hops = 4 - i;
            assert!(
                (table.dist(NodeId(i)) - 2.0 * hops as f64).abs() < 1e-9,
                "node {i}"
            );
        }
    }

    #[test]
    fn testbed_all_reachable_and_monotone_along_paths() {
        let t = generate::testbed(1);
        let table = EtxTable::compute(&t, NodeId(0), LinkCost::Forward);
        for i in t.nodes() {
            assert!(table.dist(i).is_finite(), "node {i} unreachable");
            if i != NodeId(0) {
                let path = table.path_from(i).unwrap();
                // Distances strictly decrease along the path.
                for w in path.windows(2) {
                    assert!(table.dist(w[0]) > table.dist(w[1]));
                }
            }
        }
    }

    #[test]
    fn closer_is_a_strict_total_order() {
        let t = generate::testbed(2);
        let table = EtxTable::compute(&t, NodeId(5), LinkCost::Forward);
        for a in t.nodes() {
            assert!(!table.closer(a, a));
            for b in t.nodes() {
                if a != b {
                    assert!(table.closer(a, b) != table.closer(b, a));
                }
            }
        }
    }
}
