//! Memoized per-destination metric tables.
//!
//! ETX and EOTX are single-destination computations over the subgraph
//! that can reach the destination; a run with many flows toward the same
//! sink would otherwise recompute the identical table once per flow. A
//! [`MetricCache`] keys tables by `(destination, link-cost kind)` and
//! hands out [`Arc`]s, so agents share one table per destination.
//!
//! Contract: a cache belongs to **one** topology. Tables are pure
//! functions of `(topology, dst, cost)`; the cache never invalidates, so
//! feeding it a second topology would serve stale tables. Debug builds
//! assert the topology's shape (`n`, link count) never changes between
//! calls; release builds trust the caller. Lazily computing through the
//! cache — rather than precomputing all-pairs tables — is what keeps
//! metric memory O(flows · n) instead of O(n²) on city-scale meshes.

use crate::eotx::EotxTable;
use crate::etx::{EtxTable, LinkCost};
use mesh_topology::{NodeId, Topology};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Lazily computed, shared ETX/EOTX tables for one topology.
#[derive(Default, Debug)]
#[must_use = "a metric cache does nothing until queried"]
pub struct MetricCache {
    etx: BTreeMap<(usize, u8), Arc<EtxTable>>,
    eotx: BTreeMap<usize, Arc<EotxTable>>,
    /// `(n, link_count)` of the first topology seen, for the debug-build
    /// single-topology assertion.
    shape: Option<(usize, usize)>,
}

fn cost_key(cost: LinkCost) -> u8 {
    match cost {
        LinkCost::Forward => 0,
        LinkCost::ForwardReverse => 1,
    }
}

impl MetricCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn check_shape(&mut self, topo: &Topology) {
        let shape = (topo.n(), topo.link_count());
        match self.shape {
            None => self.shape = Some(shape),
            Some(s) => debug_assert_eq!(
                s, shape,
                "MetricCache used with a second topology; tables would be stale"
            ),
        }
    }

    /// The ETX table toward `dst` under `cost`, computing it on first use.
    pub fn etx(&mut self, topo: &Topology, dst: NodeId, cost: LinkCost) -> Arc<EtxTable> {
        self.check_shape(topo);
        self.etx
            .entry((dst.0, cost_key(cost)))
            .or_insert_with(|| Arc::new(EtxTable::compute(topo, dst, cost)))
            .clone()
    }

    /// The EOTX table toward `dst`, computing it on first use.
    pub fn eotx(&mut self, topo: &Topology, dst: NodeId) -> Arc<EotxTable> {
        self.check_shape(topo);
        self.eotx
            .entry(dst.0)
            .or_insert_with(|| Arc::new(EotxTable::compute(topo, dst)))
            .clone()
    }

    /// Number of memoized tables (ETX entries + EOTX entries).
    pub fn len(&self) -> usize {
        self.etx.len() + self.eotx.len()
    }

    /// True when nothing has been computed yet.
    pub fn is_empty(&self) -> bool {
        self.etx.is_empty() && self.eotx.is_empty()
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use mesh_topology::generate;

    #[test]
    fn caches_by_destination_and_cost() {
        let t = generate::testbed(1);
        let mut cache = MetricCache::new();
        assert!(cache.is_empty());
        let a = cache.etx(&t, NodeId(0), LinkCost::Forward);
        let b = cache.etx(&t, NodeId(0), LinkCost::Forward);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one table");
        let c = cache.etx(&t, NodeId(0), LinkCost::ForwardReverse);
        assert!(!Arc::ptr_eq(&a, &c), "cost kinds are distinct keys");
        let d = cache.eotx(&t, NodeId(5));
        let e = cache.eotx(&t, NodeId(5));
        assert!(Arc::ptr_eq(&d, &e));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn cached_tables_match_direct_computation() {
        let t = generate::testbed(2);
        let mut cache = MetricCache::new();
        let cached = cache.etx(&t, NodeId(3), LinkCost::Forward);
        let direct = EtxTable::compute(&t, NodeId(3), LinkCost::Forward);
        assert_eq!(cached.distances(), direct.distances());
        let cached = cache.eotx(&t, NodeId(3));
        let direct = EotxTable::compute(&t, NodeId(3));
        assert_eq!(cached.distances(), direct.distances());
    }
}
