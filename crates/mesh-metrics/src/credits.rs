//! Algorithm 1, TX credits (Eq 3.3), and pruning — the per-flow plan a
//! MORE source distributes in its packet headers (§3.2.1).
//!
//! Given a distance metric toward the destination (ETX in the shipped
//! protocol; EOTX for the §5.7 comparison), the plan:
//!
//! 1. keeps only nodes strictly closer to the destination than the source
//!    ("we can ignore nodes whose ETX to the destination is greater than
//!    that of the source");
//! 2. computes each node's expected transmissions `z_i` per source packet
//!    (Algorithm 1);
//! 3. prunes forwarders expected to perform less than a configurable
//!    fraction (10 % in MORE) of all transmissions, and optionally caps the
//!    forwarder list (the implementation bounds it to 10, §4.6c), then
//!    recomputes `z` over the survivors;
//! 4. derives the TX credit of every forwarder (Eq 3.3): transmissions owed
//!    per packet *received from upstream*.

// xtask: allow(panic_path, file) -- credit matrices are square in the participant count fixed at build and indices come from the same participant ordering.

use crate::EPS;
use mesh_topology::{NodeId, Topology};

/// Tuning for [`ForwarderPlan::compute`].
#[derive(Clone, Copy, Debug)]
pub struct PlanConfig {
    /// Prune forwarders with `z_i < prune_fraction · Σ z_j` (§3.2.1
    /// "Pruning"; MORE uses 0.1). Zero disables pruning.
    pub prune_fraction: f64,
    /// Hard cap on intermediate forwarders (the header bounds it to 10,
    /// §4.6c). `None` disables the cap.
    pub max_forwarders: Option<usize>,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            prune_fraction: 0.1,
            max_forwarders: Some(10),
        }
    }
}

impl PlanConfig {
    /// No pruning, no cap — the raw Algorithm 1 output (used by the theory
    /// code and the gap analysis).
    pub fn unpruned() -> Self {
        PlanConfig {
            prune_fraction: 0.0,
            max_forwarders: None,
        }
    }
}

/// The routing state MORE carries per flow: participating nodes in metric
/// order, expected transmission counts, and TX credits.
#[derive(Clone, Debug)]
pub struct ForwarderPlan {
    pub src: NodeId,
    pub dst: NodeId,
    /// Participants sorted by ascending metric: `order[0] == dst`, last is
    /// `src`. Includes only surviving (un-pruned) nodes.
    pub order: Vec<NodeId>,
    /// `z[i]` — expected transmissions node `i` makes per source packet;
    /// zero for non-participants. Indexed by raw node id.
    pub z: Vec<f64>,
    /// `L[i]` — expected packets node `i` must forward per source packet
    /// (Eq 3.1); `L[dst]` is the delivered flow and ≈ 1.
    pub load: Vec<f64>,
    /// `tx_credit[i]` — Eq (3.3): transmissions per packet heard from
    /// upstream. Zero for the source (it is clocked by its own send loop)
    /// and the destination.
    pub tx_credit: Vec<f64>,
}

impl ForwarderPlan {
    /// Builds the plan for a `src → dst` flow under the given metric.
    ///
    /// `metric` must hold each node's distance to `dst` (e.g.
    /// [`crate::EtxTable::distances`]); `metric[dst] == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst`, either id is out of range, or the source
    /// cannot reach the destination under the metric.
    pub fn compute(
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        metric: &[f64],
        cfg: &PlanConfig,
    ) -> Self {
        let n = topo.n();
        assert!(src.0 < n && dst.0 < n, "node out of range");
        assert_ne!(src, dst, "source equals destination");
        assert_eq!(metric.len(), n, "metric length mismatch");
        assert!(
            metric[src.0].is_finite(),
            "source cannot reach destination under the metric"
        );

        // Strict order key: (metric, id). A node participates when it is
        // strictly closer than the source under this order.
        let key = |i: usize| (metric[i], i);
        let mut participants: Vec<usize> = (0..n)
            .filter(|&i| i == src.0 || (metric[i].is_finite() && key(i) < key(src.0)))
            .collect();
        participants.sort_by(|&a, &b| {
            let (ka, kb) = (key(a), key(b));
            ka.0.total_cmp(&kb.0).then(ka.1.cmp(&kb.1))
        });
        debug_assert_eq!(participants[0], dst.0, "destination must be cheapest");

        let (z, load) = algorithm1(topo, &participants, src.0);

        // Pruning pass (§3.2.1): drop low-contribution forwarders, then
        // recompute z over the survivors so credits stay consistent.
        //
        // The paper's bare rule (z_i < 0.1·Σz_j) can disconnect a long
        // flow whose transmissions spread thinly over many relays, so
        // removal is *connectivity-checked*: a forwarder is pruned only if
        // the recomputed plan still delivers the unit flow. Forwarders are
        // tried lowest-z first; the same guarded loop then enforces the
        // forwarder cap (§4.6c).
        let mut survivors = participants.clone();
        let mut z = z;
        let mut load = load;
        let mut protected: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        loop {
            let total: f64 = z.iter().sum();
            let over_cap = cfg
                .max_forwarders
                .is_some_and(|cap| survivors.len().saturating_sub(2) > cap);
            // Lowest-z removable forwarder that violates a rule.
            let candidate = survivors
                .iter()
                .copied()
                .filter(|&i| i != src.0 && i != dst.0 && !protected.contains(&i))
                .filter(|&i| {
                    over_cap
                        || (cfg.prune_fraction > 0.0 && z[i] < cfg.prune_fraction * total - EPS)
                })
                .min_by(|&a, &b| z[a].total_cmp(&z[b]));
            let Some(worst) = candidate else { break };
            let trial: Vec<usize> = survivors.iter().copied().filter(|&i| i != worst).collect();
            let (tz, tload) = algorithm1(topo, &trial, src.0);
            if tload[dst.0] >= 1.0 - 1e-6 {
                survivors = trial;
                z = tz;
                load = tload;
            } else {
                // Removing this node strands flow; keep it regardless of
                // its low contribution.
                protected.insert(worst);
            }
        }

        // Eq (3.3): TX_credit_i = z_i / Σ_{j upstream of i} z_j (1 − ε_ji).
        let mut tx_credit = vec![0.0; n];
        for (pos, &i) in survivors.iter().enumerate() {
            if i == src.0 || i == dst.0 {
                continue;
            }
            let mut heard = 0.0;
            for &j in &survivors[pos + 1..] {
                heard += z[j] * topo.delivery(NodeId(j), NodeId(i));
            }
            if heard > EPS {
                tx_credit[i] = z[i] / heard;
            }
        }

        ForwarderPlan {
            src,
            dst,
            order: survivors.into_iter().map(NodeId).collect(),
            z,
            load,
            tx_credit,
        }
    }

    /// Total expected transmissions per delivered packet, Σ z_i.
    pub fn total_cost(&self) -> f64 {
        self.z.iter().sum()
    }

    /// Intermediate forwarders (everyone but src and dst), ordered by
    /// ascending metric — the header's forwarder list.
    pub fn forwarders(&self) -> Vec<NodeId> {
        self.order
            .iter()
            .copied()
            .filter(|&i| i != self.src && i != self.dst)
            .collect()
    }

    /// True if `i` participates in this flow (src, dst, or forwarder).
    pub fn participates(&self, i: NodeId) -> bool {
        self.order.contains(&i)
    }

    /// Position of `i` in the ascending-metric order, if it participates.
    pub fn rank(&self, i: NodeId) -> Option<usize> {
        self.order.iter().position(|&x| x == i)
    }
}

/// Algorithm 1 over an ascending-ordered participant list.
///
/// Returns `(z, load)`, both indexed by raw node id and zero for
/// non-participants.
fn algorithm1(topo: &Topology, order: &[usize], src: usize) -> (Vec<f64>, Vec<f64>) {
    let n = topo.n();
    let mut z = vec![0.0; n];
    let mut load = vec![0.0; n];
    load[src] = 1.0; // L_n ← 1 {at source}

    // From the source down to (but excluding) the destination at position 0.
    for pos in (1..order.len()).rev() {
        let i = order[pos];
        if load[i] <= 0.0 {
            continue;
        }
        // Denominator: probability that at least one cheaper participant
        // hears i.
        let mut p_none = 1.0;
        for &k in &order[..pos] {
            p_none *= topo.loss(NodeId(i), NodeId(k));
        }
        let reach = 1.0 - p_none;
        if reach <= EPS {
            // i cannot make progress; it contributes nothing (packets that
            // only i holds are lost — matches the LP where such a node
            // would receive no flow).
            z[i] = 0.0;
            continue;
        }
        z[i] = load[i] / reach;

        // Contribution of i to every cheaper node's load:
        // L_j += z_i · Π_{k<j} ε_ik · (1 − ε_ij).
        let mut p_closer_all_missed = 1.0;
        for &j in &order[..pos] {
            let p_ij = topo.delivery(NodeId(i), NodeId(j));
            load[j] += z[i] * p_closer_all_missed * p_ij;
            p_closer_all_missed *= 1.0 - p_ij;
        }
    }
    (z, load)
}

#[cfg(test)]
mod test {
    use super::*;
    use crate::etx::{EtxTable, LinkCost};
    use mesh_topology::generate;

    fn plan_for(topo: &Topology, src: usize, dst: usize, cfg: &PlanConfig) -> ForwarderPlan {
        let etx = EtxTable::compute(topo, NodeId(dst), LinkCost::Forward);
        ForwarderPlan::compute(topo, NodeId(src), NodeId(dst), etx.distances(), cfg)
    }

    #[test]
    fn single_perfect_link() {
        let t = mesh_topology::Topology::from_matrix("pair", vec![vec![0.0, 1.0], vec![0.0, 0.0]]);
        let p = plan_for(&t, 0, 1, &PlanConfig::unpruned());
        assert!((p.z[0] - 1.0).abs() < 1e-9);
        assert!((p.load[1] - 1.0).abs() < 1e-9);
        assert!((p.total_cost() - 1.0).abs() < 1e-9);
        assert!(p.forwarders().is_empty());
    }

    #[test]
    fn single_lossy_link_costs_inverse_p() {
        let t = mesh_topology::Topology::from_matrix("pair", vec![vec![0.0, 0.25], vec![0.0, 0.0]]);
        let p = plan_for(&t, 0, 1, &PlanConfig::unpruned());
        assert!((p.z[0] - 4.0).abs() < 1e-9, "z_src = 1/p");
        assert!((p.load[1] - 1.0).abs() < 1e-9, "delivered flow = 1");
    }

    #[test]
    fn motivating_example_loads() {
        // src(0) hears: dst via 0.49, R via 1.0. Every src transmission is
        // heard by R or dst, so z_src = 1. R must forward only what dst
        // missed: L_R = 0.51, z_R = 0.51.
        let t = generate::motivating();
        let p = plan_for(&t, 0, 2, &PlanConfig::unpruned());
        assert!((p.z[0] - 1.0).abs() < 1e-9, "z_src {}", p.z[0]);
        assert!((p.load[1] - 0.51).abs() < 1e-9, "L_R {}", p.load[1]);
        assert!((p.z[1] - 0.51).abs() < 1e-9, "z_R {}", p.z[1]);
        assert!((p.load[2] - 1.0).abs() < 1e-9, "delivered {}", p.load[2]);
        // Total cost 1.51 == the EOTX of the source on this topology.
        assert!((p.total_cost() - 1.51).abs() < 1e-9);
    }

    #[test]
    fn delivered_flow_is_unit_on_testbed() {
        let t = generate::testbed(0);
        for (s, d) in [(0usize, 19usize), (3, 11), (15, 2)] {
            let p = plan_for(&t, s, d, &PlanConfig::unpruned());
            assert!(
                (p.load[d] - 1.0).abs() < 1e-6,
                "delivered flow {} for {s}->{d}",
                p.load[d]
            );
        }
    }

    #[test]
    fn tx_credits_balance_expected_receptions() {
        // credit_i × (expected packets i hears from upstream) == z_i.
        let t = generate::testbed(1);
        let p = plan_for(&t, 0, 19, &PlanConfig::unpruned());
        for (pos, &i) in p.order.iter().enumerate() {
            if i == p.src || i == p.dst || p.tx_credit[i.0] == 0.0 {
                continue;
            }
            let heard: f64 = p.order[pos + 1..]
                .iter()
                .map(|&j| p.z[j.0] * t.delivery(j, i))
                .sum();
            assert!(
                (p.tx_credit[i.0] * heard - p.z[i.0]).abs() < 1e-9,
                "credit imbalance at {i}"
            );
        }
    }

    #[test]
    fn pruning_removes_low_contributors() {
        let t = generate::testbed(2);
        let raw = plan_for(&t, 4, 16, &PlanConfig::unpruned());
        let pruned = plan_for(&t, 4, 16, &PlanConfig::default());
        assert!(pruned.order.len() <= raw.order.len());
        // All pruned-plan forwarders carry their weight.
        let total = pruned.total_cost();
        for f in pruned.forwarders() {
            assert!(
                pruned.z[f.0] >= 0.1 * total - 1e-6 || pruned.forwarders().len() <= 1,
                "forwarder {f} kept despite z={} < 10% of {total}",
                pruned.z[f.0]
            );
        }
        // Source and destination always survive.
        assert!(pruned.participates(NodeId(4)));
        assert!(pruned.participates(NodeId(16)));
    }

    #[test]
    fn forwarder_cap_respected() {
        let t = generate::testbed(3);
        let cfg = PlanConfig {
            prune_fraction: 0.0,
            max_forwarders: Some(2),
        };
        let p = plan_for(&t, 0, 19, &cfg);
        assert!(p.forwarders().len() <= 2);
    }

    #[test]
    fn participants_are_strictly_closer_than_source() {
        let t = generate::testbed(4);
        let etx = EtxTable::compute(&t, NodeId(9), LinkCost::Forward);
        let p = ForwarderPlan::compute(
            &t,
            NodeId(2),
            NodeId(9),
            etx.distances(),
            &PlanConfig::unpruned(),
        );
        let src_key = (etx.dist(NodeId(2)), 2usize);
        for &i in &p.order {
            if i == NodeId(2) {
                continue;
            }
            assert!(
                (etx.dist(i), i.0) < src_key,
                "participant {i} not closer than source"
            );
        }
    }

    #[test]
    #[should_panic(expected = "source equals destination")]
    fn same_src_dst_panics() {
        let t = generate::motivating();
        let _ = plan_for(&t, 1, 1, &PlanConfig::unpruned());
    }

    #[test]
    fn order_is_ascending_metric() {
        let t = generate::testbed(5);
        let etx = EtxTable::compute(&t, NodeId(0), LinkCost::Forward);
        let p = ForwarderPlan::compute(
            &t,
            NodeId(19),
            NodeId(0),
            etx.distances(),
            &PlanConfig::default(),
        );
        for w in p.order.windows(2) {
            assert!((etx.dist(w[0]), w[0].0) < (etx.dist(w[1]), w[1].0));
        }
        assert_eq!(p.order[0], NodeId(0));
        assert_eq!(*p.order.last().unwrap(), NodeId(19));
    }

    #[test]
    fn nan_metric_entry_is_excluded_like_unreachable() {
        // total_cmp regression: a NaN distance used to panic the
        // participant sort; it must act like an unreachable node.
        let t = generate::motivating();
        let etx = EtxTable::compute(&t, NodeId(2), LinkCost::Forward);
        let mut with_nan = etx.distances().to_vec();
        let mut with_inf = with_nan.clone();
        with_nan[1] = f64::NAN;
        with_inf[1] = f64::INFINITY;
        let cfg = PlanConfig::unpruned();
        let p_nan = ForwarderPlan::compute(&t, NodeId(0), NodeId(2), &with_nan, &cfg);
        let p_inf = ForwarderPlan::compute(&t, NodeId(0), NodeId(2), &with_inf, &cfg);
        assert!(!p_nan.participates(NodeId(1)));
        assert_eq!(p_nan.order, p_inf.order);
        assert_eq!(p_nan.z, p_inf.z);
    }
}
