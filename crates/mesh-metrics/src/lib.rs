//! Routing metrics and minimum-cost opportunistic flow algorithms.
//!
//! Implements both the practical machinery of thesis §3.2.1 and the full
//! theory of Chapter 5:
//!
//! * [`etx`] — the classic ETX metric (Dijkstra over `1/p` link costs) and
//!   best-path extraction, as used by Srcr and by MORE/ExOR for forwarder
//!   ordering.
//! * [`eotx`] — the EOTX metric: the minimum expected number of
//!   *opportunistic* transmissions network-wide to deliver one packet.
//!   Both the Bellman–Ford formulation (Algorithms 3–4) and the Dijkstra
//!   formulation for independent losses (Algorithm 5).
//! * [`credits`] — Algorithm 1 (per-node expected transmission counts
//!   `z_i`), the TX-credit of Eq (3.3), and MORE's 10 % pruning rule.
//! * [`flow`] — Algorithm 6: recovering the full flow variables `x_ij` and
//!   `z_i` from a cost ordering (§5.6.1), used to verify §5.6.2's
//!   equivalence between the flow method and the EOTX method.
//! * [`gap`] — the ETX-order vs EOTX-order total-cost gap of §5.7
//!   (Proposition 6).
//! * [`fairness`] — Jain's fairness index over per-flow throughputs,
//!   used by the queueing subsystem to compare disciplines under
//!   overload.
//! * [`cache`] — lazy per-destination memoization of ETX/EOTX tables, so
//!   runs with many flows toward shared sinks compute each table once.

#![forbid(unsafe_code)]

pub mod cache;
pub mod credits;
pub mod eotx;
pub mod etx;
pub mod fairness;
pub mod flow;
pub mod gap;

pub use cache::MetricCache;
pub use credits::{ForwarderPlan, PlanConfig};
pub use eotx::EotxTable;
pub use etx::EtxTable;

/// Tolerance used for float comparisons throughout the metric algorithms.
pub const EPS: f64 = 1e-9;

/// A value standing for "unreachable" in metric tables.
pub const INF: f64 = f64::INFINITY;
