//! Algorithm 6: recovering the full flow solution `z, x` from a cost order
//! (§5.6.1), plus helpers to check the LP constraints of §5.3.2.
//!
//! Given nodes ordered by ascending cost (the EOTX order for the optimum;
//! any strict order for analysis), the water-filling solution distributes
//! each node's outgoing flow to strictly cheaper nodes in order:
//! `x_ij = (q_ij − q_i(j−1)) · z_i` with `z_i = L_i / q_i(i−1)`, where
//! `q_ij` is the probability at least one of the `j` cheapest nodes hears
//! `i`, and loads accumulate downstream from `L_src = 1`.

// xtask: allow(panic_path, file) -- the participant order is validated non-empty up front; all matrix indices range over that order's length.

use crate::EPS;
use mesh_topology::{NodeId, Topology};

/// The minimum-cost flow solution for one unit of `src → dst` demand.
#[derive(Clone, Debug)]
pub struct FlowSolution {
    /// Participants in ascending cost order (`order[0] == dst`).
    pub order: Vec<NodeId>,
    /// `z[i]` — expected transmissions by node `i` per delivered packet.
    pub z: Vec<f64>,
    /// `x[i][j]` — innovative-information flow from `i` to `j`.
    pub x: Vec<Vec<f64>>,
    /// `load[i]` — `L_i`, the flow entering node `i`.
    pub load: Vec<f64>,
}

impl FlowSolution {
    /// Runs Algorithm 6 for the participant set `order` (ascending cost,
    /// destination first, source last).
    pub fn compute(topo: &Topology, order: &[NodeId], src: NodeId) -> Self {
        let n = topo.n();
        assert!(!order.is_empty(), "empty participant order");
        assert_eq!(
            *order.last().expect("non-empty"),
            src,
            "source must be the most expensive participant"
        );
        let mut z = vec![0.0; n];
        let mut x = vec![vec![0.0; n]; n];
        let mut load = vec![0.0; n];
        load[src.0] = 1.0;

        for pos in (1..order.len()).rev() {
            let i = order[pos];
            if load[i.0] <= EPS {
                continue;
            }
            // q over the cheaper prefix.
            let mut q_prev = 0.0;
            let mut q_full = 0.0;
            for &j in &order[..pos] {
                q_full = 1.0 - (1.0 - q_full) * (1.0 - topo.delivery(i, j));
            }
            if q_full <= EPS {
                continue; // stranded flow; matches Algorithm 1's behaviour
            }
            z[i.0] = load[i.0] / q_full;
            for &j in &order[..pos] {
                let q_new = 1.0 - (1.0 - q_prev) * (1.0 - topo.delivery(i, j));
                let xij = (q_new - q_prev) * z[i.0];
                x[i.0][j.0] = xij;
                load[j.0] += xij;
                q_prev = q_new;
            }
        }

        FlowSolution {
            order: order.to_vec(),
            z,
            x,
            load,
        }
    }

    /// Σ z_i — the objective of the minimum-cost LP (5.3).
    pub fn total_cost(&self) -> f64 {
        self.z.iter().sum()
    }

    /// Net flow out of node `i`: Σ_k x_ik − x_ki (LHS of Eq 5.1).
    pub fn net_flow(&self, i: NodeId) -> f64 {
        let n = self.x.len();
        let mut out = 0.0;
        for k in 0..n {
            out += self.x[i.0][k] - self.x[k][i.0];
        }
        out
    }

    /// Checks the flow-conservation constraints (Eq 5.1) for unit demand.
    pub fn conserves(&self, src: NodeId, dst: NodeId, tol: f64) -> bool {
        let n = self.x.len();
        (0..n).all(|i| {
            let expect = if i == src.0 {
                1.0
            } else if i == dst.0 {
                -1.0
            } else {
                0.0
            };
            // Nodes that never carry flow trivially conserve.
            (self.net_flow(NodeId(i)) - expect).abs() <= tol
                || (expect == 0.0 && self.load[i] <= EPS)
        })
    }

    /// Checks the per-hyperedge cost constraints (Eq 5.2) for the prefix
    /// sets `{1..k}` — the binding family by Proposition 3.
    pub fn satisfies_cost_constraints(&self, topo: &Topology, tol: f64) -> bool {
        for (pos, &i) in self.order.iter().enumerate() {
            let mut q = 0.0;
            let mut xsum = 0.0;
            for &j in &self.order[..pos] {
                q = 1.0 - (1.0 - q) * (1.0 - topo.delivery(i, j));
                xsum += self.x[i.0][j.0];
                if q * self.z[i.0] + tol < xsum {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod test {
    use super::*;
    use crate::credits::{ForwarderPlan, PlanConfig};
    use crate::eotx::EotxTable;
    use crate::etx::{EtxTable, LinkCost};
    use mesh_topology::generate;

    /// Participants under a metric, ascending, source last (mirrors
    /// ForwarderPlan's eligibility rule).
    fn order_for(topo: &mesh_topology::Topology, metric: &[f64], src: usize) -> Vec<NodeId> {
        let key = |i: usize| (metric[i], i);
        let mut v: Vec<usize> = (0..topo.n())
            .filter(|&i| i == src || (metric[i].is_finite() && key(i) < key(src)))
            .collect();
        v.sort_by(|&a, &b| key(a).partial_cmp(&key(b)).unwrap());
        v.into_iter().map(NodeId).collect()
    }

    #[test]
    fn flow_conserves_on_testbed() {
        let t = generate::testbed(0);
        let (s, d) = (NodeId(19), NodeId(0));
        let eotx = EotxTable::compute(&t, d);
        let order = order_for(&t, eotx.distances(), s.0);
        let sol = FlowSolution::compute(&t, &order, s);
        assert!(sol.conserves(s, d, 1e-6));
        assert!(sol.satisfies_cost_constraints(&t, 1e-9));
    }

    #[test]
    fn flow_total_cost_equals_source_eotx() {
        // §5.6.2: with the EOTX order, Σ z_i == d(src).
        for seed in 0..3u64 {
            let t = generate::testbed(seed);
            for (s, d) in [(19usize, 0usize), (7, 12)] {
                let eotx = EotxTable::compute(&t, NodeId(d));
                let order = order_for(&t, eotx.distances(), s);
                let sol = FlowSolution::compute(&t, &order, NodeId(s));
                assert!(
                    (sol.total_cost() - eotx.dist(NodeId(s))).abs() < 1e-6,
                    "seed {seed} {s}->{d}: {} vs {}",
                    sol.total_cost(),
                    eotx.dist(NodeId(s))
                );
            }
        }
    }

    #[test]
    fn algorithm1_equals_algorithm6_under_same_order() {
        // §5.6.2: for independent losses Alg 1 (credits) and Alg 6 (flow)
        // compute the same z — under any strict order, here ETX's.
        for seed in 0..3u64 {
            let t = generate::testbed(seed);
            let (s, d) = (NodeId(17), NodeId(1));
            let etx = EtxTable::compute(&t, d, LinkCost::Forward);
            let plan = ForwarderPlan::compute(&t, s, d, etx.distances(), &PlanConfig::unpruned());
            let order = order_for(&t, etx.distances(), s.0);
            assert_eq!(plan.order, order, "participant sets differ");
            let sol = FlowSolution::compute(&t, &order, s);
            for i in t.nodes() {
                assert!(
                    (plan.z[i.0] - sol.z[i.0]).abs() < 1e-9,
                    "z mismatch at {i} (seed {seed}): {} vs {}",
                    plan.z[i.0],
                    sol.z[i.0]
                );
            }
        }
    }

    #[test]
    fn flow_only_moves_downhill() {
        let t = generate::testbed(1);
        let (s, d) = (NodeId(5), NodeId(14));
        let eotx = EotxTable::compute(&t, d);
        let order = order_for(&t, eotx.distances(), s.0);
        let sol = FlowSolution::compute(&t, &order, s);
        let rank: std::collections::HashMap<NodeId, usize> =
            order.iter().enumerate().map(|(r, &n)| (n, r)).collect();
        for i in t.nodes() {
            for j in t.nodes() {
                if sol.x[i.0][j.0] > 0.0 {
                    assert!(rank[&i] > rank[&j], "flow from {i} to non-cheaper {j}");
                }
            }
        }
    }

    #[test]
    fn two_node_flow() {
        let t = mesh_topology::Topology::from_matrix("pair", vec![vec![0.0, 0.5], vec![0.0, 0.0]]);
        let order = vec![NodeId(1), NodeId(0)];
        let sol = FlowSolution::compute(&t, &order, NodeId(0));
        assert!((sol.z[0] - 2.0).abs() < 1e-9);
        assert!((sol.x[0][1] - 1.0).abs() < 1e-9);
        assert!(sol.conserves(NodeId(0), NodeId(1), 1e-9));
    }

    #[test]
    #[should_panic(expected = "most expensive participant")]
    fn wrong_source_position_panics() {
        let t = generate::motivating();
        let order = vec![NodeId(0), NodeId(1), NodeId(2)];
        let _ = FlowSolution::compute(&t, &order, NodeId(0));
    }
}
